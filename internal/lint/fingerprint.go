// The fingerprintcomplete analyzer: every field of a fingerprinted struct
// must be either folded into its fingerprint function or named — with a
// reason — on an explicit exclusion list. Adding a behavior-changing field
// to dse.Options without deciding its checkpoint-compatibility story was
// the recurring PR 5/6 hazard; this check turns the omission into a build
// break instead of a silent cross-restart cache aliasing bug.
//
// Contract: a function carrying `//gemini:fingerprint-of T` in its doc
// comment is T's fingerprint (or resolution) function. The analyzer
// computes the set of T's fields the function reads — directly through any
// parameter or receiver of type T/*T, and transitively through
// same-package functions the parameter is passed to — and compares it
// against T's declared fields minus the exclusion list: a package-level
// `map[string]string{field: reason}` variable carrying
// `//gemini:fingerprint-exclude T`. Uncovered fields, stale exclusions and
// contradictory (read AND excluded) entries are all reported.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FingerprintAnalyzer enforces the fingerprint-completeness contract on
// every //gemini:fingerprint-of function.
var FingerprintAnalyzer = &Analyzer{
	Name: "fingerprintcomplete",
	Doc: "every field of a //gemini:fingerprint-of T struct must be read by " +
		"the fingerprint function or listed, with a reason, in the package's " +
		"//gemini:fingerprint-exclude T map",
	Run: runFingerprint,
}

func runFingerprint(pass *Pass) error {
	for _, fd := range funcDecls(pass.Pkg) {
		typeName, ok := hasDirective(fd.Doc, "fingerprint-of")
		if !ok {
			continue
		}
		if typeName == "" {
			pass.Reportf(fd.Pos(), "gemini:fingerprint-of needs a type name")
			continue
		}
		checkFingerprint(pass, fd, typeName)
	}
	return nil
}

func checkFingerprint(pass *Pass, fd *ast.FuncDecl, typeName string) {
	strct, named := lookupStruct(pass.Pkg, typeName)
	if strct == nil {
		pass.Reportf(fd.Pos(), "gemini:fingerprint-of %s: no struct type %s in package %s", typeName, typeName, pass.Pkg.Types.Name())
		return
	}
	fields := map[string]bool{}
	for i := 0; i < strct.NumFields(); i++ {
		fields[strct.Field(i).Name()] = true
	}

	covered := map[string]bool{}
	walker := &fieldReadWalker{pass: pass, named: named, seen: map[*ast.FuncDecl]bool{}}
	walker.collect(fd, covered)

	excluded, exclPos := exclusionList(pass, typeName)
	if exclPos == 0 {
		exclPos = fd.Pos()
	}

	var missing, stale, contradictory []string
	for f := range fields {
		if !covered[f] && excluded[f] == "" {
			missing = append(missing, f)
		}
	}
	for f := range excluded {
		if !fields[f] {
			stale = append(stale, f)
		} else if covered[f] {
			contradictory = append(contradictory, f)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	sort.Strings(contradictory)
	if len(missing) > 0 {
		pass.Reportf(fd.Pos(), "fingerprint of %s does not cover field(s) %s: fold them into %s or add them to the //gemini:fingerprint-exclude %s list with a checkpoint-compat reason",
			typeName, strings.Join(missing, ", "), fd.Name.Name, typeName)
	}
	for _, f := range stale {
		pass.Reportf(exclPos, "fingerprint exclusion list for %s names %q, which is not a field of %s (stale entry)", typeName, f, typeName)
	}
	for _, f := range contradictory {
		pass.Reportf(exclPos, "field %s.%s is both read by the fingerprint function and excluded: drop the stale exclusion", typeName, f)
	}
}

// lookupStruct resolves a package-scope struct type by name.
func lookupStruct(pkg *Package, name string) (*types.Struct, *types.Named) {
	obj := pkg.Types.Scope().Lookup(name)
	if obj == nil {
		return nil, nil
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return nil, nil
	}
	strct, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return strct, named
}

// exclusionList finds the package's //gemini:fingerprint-exclude map for
// typeName and returns field -> reason. Entries with an empty reason are
// reported: the list's whole point is recording the compat decision.
func exclusionList(pass *Pass, typeName string) (map[string]string, token.Pos) {
	out := map[string]string{}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			v, ok := hasDirective(gd.Doc, "fingerprint-exclude")
			if !ok || v != typeName {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, val := range vs.Values {
					lit, ok := val.(*ast.CompositeLit)
					if !ok {
						pass.Reportf(val.Pos(), "gemini:fingerprint-exclude %s must be a map[string]string literal of field -> reason", typeName)
						continue
					}
					for _, elt := range lit.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, kerr := stringLit(pass, kv.Key)
						reason, rerr := stringLit(pass, kv.Value)
						if kerr || rerr {
							continue
						}
						if reason == "" {
							pass.Reportf(kv.Pos(), "fingerprint exclusion for %s.%s has no reason: state the checkpoint-compat story", typeName, key)
						}
						out[key] = reason
					}
				}
			}
			return out, gd.Pos()
		}
	}
	return out, 0
}

// stringLit evaluates a constant string expression.
func stringLit(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Pkg.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		pass.Reportf(e.Pos(), "fingerprint exclusion entries must be constant strings")
		return "", true
	}
	s := tv.Value.ExactString()
	if len(s) >= 2 && s[0] == '"' {
		s = s[1 : len(s)-1]
	}
	return s, false
}

// fieldReadWalker computes which fields of the target struct a function
// reads through its T-typed parameters or receiver, following same-package
// calls the parameter is forwarded to.
type fieldReadWalker struct {
	pass  *Pass
	named *types.Named
	seen  map[*ast.FuncDecl]bool
}

// collect accumulates field reads of fd into covered.
func (w *fieldReadWalker) collect(fd *ast.FuncDecl, covered map[string]bool) {
	if w.seen[fd] {
		return
	}
	w.seen[fd] = true
	info := w.pass.Pkg.TypesInfo

	params := w.targetParams(fd)
	if len(params) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && params[obj] {
					covered[e.Sel.Name] = true
				}
			}
		case *ast.CallExpr:
			w.follow(e, params, covered)
		}
		return true
	})
}

// targetParams returns the objects of fd's parameters and receiver whose
// type is the target struct (by value or pointer).
func (w *fieldReadWalker) targetParams(fd *ast.FuncDecl) map[types.Object]bool {
	info := w.pass.Pkg.TypesInfo
	out := map[types.Object]bool{}
	add := func(fields []*ast.Field) {
		for _, f := range fields {
			for _, name := range f.Names {
				obj := info.Defs[name]
				if obj != nil && w.isTarget(obj.Type()) {
					out[obj] = true
				}
			}
		}
	}
	if fd.Recv != nil {
		add(fd.Recv.List)
	}
	if fd.Type.Params != nil {
		add(fd.Type.Params.List)
	}
	return out
}

// isTarget reports whether t is the fingerprinted struct, possibly behind
// one pointer.
func (w *fieldReadWalker) isTarget(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() == w.named.Obj()
}

// follow recurses into a same-package callee when a target parameter is
// forwarded to it (by value or by address), so helpers like
// activePatience(opt) count as fingerprint coverage.
func (w *fieldReadWalker) follow(call *ast.CallExpr, params map[types.Object]bool, covered map[string]bool) {
	forwards := false
	for _, arg := range call.Args {
		e := ast.Unparen(arg)
		if u, ok := e.(*ast.UnaryExpr); ok {
			e = ast.Unparen(u.X)
		}
		if id, ok := e.(*ast.Ident); ok {
			if obj := w.pass.Pkg.TypesInfo.Uses[id]; obj != nil && params[obj] {
				forwards = true
				break
			}
		}
	}
	if !forwards {
		return
	}
	callee := calleeFunc(w.pass.Pkg.TypesInfo, call)
	if callee == nil || callee.Pkg() != w.pass.Pkg.Types {
		return
	}
	if decl := w.declOf(callee); decl != nil {
		w.collect(decl, covered)
	}
}

// declOf finds the AST declaration of a package function.
func (w *fieldReadWalker) declOf(f *types.Func) *ast.FuncDecl {
	for _, fd := range funcDecls(w.pass.Pkg) {
		if obj := w.pass.Pkg.TypesInfo.Defs[fd.Name]; obj == f {
			return fd
		}
	}
	return nil
}
