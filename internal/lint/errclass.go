// The errclass analyzer: error classification must survive wrapping.
// ErrInfeasible vs infrastructure-error is the sweep engine's core honesty
// contract (PR 2), and CellError's typed kinds drive retry decisions
// (PR 6); both break silently the moment an error is compared with == or
// matched as a string, or re-wrapped with %v so errors.Is/As stop seeing
// the chain.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrClassAnalyzer flags == / != / switch comparisons between non-nil
// errors, string matching on err.Error(), and fmt.Errorf calls that format
// an error argument without any %w verb. Fix with errors.Is / errors.As /
// %w; suppress a deliberate identity comparison with
// //gemini:errclass-ok <reason>.
var ErrClassAnalyzer = &Analyzer{
	Name: "errclass",
	Doc: "compare errors with errors.Is/errors.As (never == or string " +
		"matching) and wrap with %w so typed classification survives; " +
		"suppress with //gemini:errclass-ok <reason>",
	Run: runErrClass,
}

func runErrClass(pass *Pass) error {
	for _, fd := range funcDecls(pass.Pkg) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				checkErrCompare(pass, e)
			case *ast.SwitchStmt:
				checkErrSwitch(pass, e)
			case *ast.CallExpr:
				checkErrStringMatch(pass, e)
				checkErrorfWrap(pass, e)
			}
			return true
		})
	}
	return nil
}

// checkErrCompare flags err1 == err2 where both sides are non-nil errors.
func checkErrCompare(pass *Pass, e *ast.BinaryExpr) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	info := pass.Pkg.TypesInfo
	if !isErrorExpr(info, e.X) || !isErrorExpr(info, e.Y) {
		return
	}
	if isNilExpr(info, e.X) || isNilExpr(info, e.Y) {
		return // err == nil is the one sanctioned identity check
	}
	pass.Reportf(e.Pos(), "error compared with %s: wrapped errors never compare equal — use errors.Is (or errors.As for typed errors)", e.Op)
}

// checkErrSwitch flags `switch err { case ErrX: }` — the same identity
// comparison in switch clothing.
func checkErrSwitch(pass *Pass, s *ast.SwitchStmt) {
	info := pass.Pkg.TypesInfo
	if s.Tag == nil || !isErrorExpr(info, s.Tag) {
		return
	}
	for _, clause := range s.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, v := range cc.List {
			if !isNilExpr(info, v) {
				pass.Reportf(v.Pos(), "switch compares errors by identity: wrapped errors never match — use errors.Is in an if/else chain")
			}
		}
	}
}

// checkErrStringMatch flags strings.Contains/HasPrefix/HasSuffix/EqualFold
// over err.Error(), and err.Error() == "..." comparisons are caught by the
// string operands below.
func checkErrStringMatch(pass *Pass, call *ast.CallExpr) {
	pkg, name := calleePath(pass.Pkg.TypesInfo, call)
	if pkg != "strings" {
		return
	}
	switch name {
	case "Contains", "HasPrefix", "HasSuffix", "EqualFold", "Index":
	default:
		return
	}
	for _, arg := range call.Args {
		if isErrorStringCall(pass.Pkg.TypesInfo, arg) {
			pass.Reportf(call.Pos(), "matching err.Error() text with strings.%s: error text is not API — classify with errors.Is/errors.As against a sentinel or typed error", name)
			return
		}
	}
}

// isErrorStringCall matches expressions of the form err.Error().
func isErrorStringCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	return isErrorExpr(info, sel.X)
}

// checkErrorfWrap flags fmt.Errorf("... %v ...", err) with no %w anywhere
// in the format: flattening an error into text drops its errors.Is/As
// classification (infeasibility, retryability, cell kind) on the floor.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.TypesInfo
	pkg, name := calleePath(info, call)
	if pkg != "fmt" || name != "Errorf" || len(call.Args) < 2 {
		return
	}
	format, ok := constString(info, call.Args[0])
	if !ok || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if isErrorExpr(info, arg) && !isNilExpr(info, arg) {
			pass.Reportf(arg.Pos(), "error flattened into fmt.Errorf without %%w: the typed classification (errors.Is/errors.As) is lost — wrap with %%w or keep the sentinel in the chain")
			return
		}
	}
}

// constString evaluates a constant string expression.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	s := tv.Value.ExactString()
	if len(s) >= 2 && s[0] == '"' {
		// ExactString quotes string constants; the quoted form is fine for
		// substring checks but strip the quotes for clarity.
		return s[1 : len(s)-1], true
	}
	return s, true
}

// isErrorExpr reports whether the expression's static type is error.
func isErrorExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok {
		return false
	}
	return isErrorType(tv.Type)
}

// isNilExpr matches the untyped nil literal.
func isNilExpr(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil" && info.Uses[id] == types.Universe.Lookup("nil")
}
