// Package lint is the project's static-analysis suite: a set of
// go/analysis-style analyzers that mechanically enforce the engine's
// determinism, fingerprint-completeness, lock-hygiene, hot-path-allocation
// and error-classification invariants, plus the godoc contract previously
// policed by a standalone exported-doc walk. The suite is driven by cmd/geminilint and
// runs in CI next to vet; every invariant it checks was once broken (or
// nearly broken) by a real regression — see docs/lint.md for the history.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis API
// shape (Analyzer, Pass, Diagnostic) but is built entirely on the standard
// library (go/ast, go/types, go/importer), because this repository carries
// no external dependencies. Packages opt in to the stricter analyzers with
// directive comments (//gemini:deterministic, //gemini:documented) and
// individual findings are silenced with per-analyzer suppression comments
// that must carry a reason (for example //gemini:nondeterministic-ok sorted
// below). See docs/lint.md for the full directive and suppression syntax.
//
//gemini:documented
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one static check, mirroring golang.org/x/tools/go/analysis:
// Run inspects a type-checked package through its Pass and reports findings
// with Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters.
	Name string
	// Doc is the one-paragraph description shown by geminilint -list.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package, plus the
// diagnostic sink.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Pkg is the loaded package under analysis.
	Pkg *Package

	diags []Diagnostic
}

// Diagnostic is one finding, locatable for sorting and rendering.
type Diagnostic struct {
	// Analyzer names the check that produced the finding.
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message states the invariant violation and the fix.
	Message string
}

// String renders the diagnostic in the file:line:col: [analyzer] message
// form geminilint prints.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless a suppression comment covers it.
// Suppression is the analyzer's //gemini:<directive>-ok comment on the
// finding's line or the line immediately above; it must carry a reason.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.suppressed(pos) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressionDirectives maps each analyzer to its suppression comment. The
// determinism spelling is historical (it predates the -ok convention of the
// others); everything else is <name>-ok.
var suppressionDirectives = map[string]string{
	"determinism":  "nondeterministic-ok",
	"lockhygiene":  "lock-ok",
	"hotpathalloc": "alloc-ok",
	"errclass":     "errclass-ok",
}

// suppressed reports whether pos is covered by the running analyzer's
// suppression directive: a //gemini:<directive> comment, with a non-empty
// reason, on the same line or the line immediately above.
func (p *Pass) suppressed(pos token.Pos) bool {
	directive, ok := suppressionDirectives[p.Analyzer.Name]
	if !ok {
		return false
	}
	position := p.Pkg.Fset.Position(pos)
	lines, ok := p.Pkg.suppressions[directive]
	if !ok {
		return false
	}
	byFile := lines[position.Filename]
	return byFile[position.Line] || byFile[position.Line-1]
}

// Directive is one //gemini:key value comment, located for attachment to
// the declaration it documents.
type Directive struct {
	// Key is the directive name after "gemini:" (for example "noalloc").
	Key string
	// Value is the rest of the comment line (annotation argument or
	// suppression reason), space-trimmed.
	Value string
	// Pos locates the directive comment.
	Pos token.Pos
}

// parseDirective decodes one comment as a //gemini: directive; ok is false
// for ordinary comments.
func parseDirective(c *ast.Comment) (Directive, bool) {
	text := strings.TrimPrefix(c.Text, "//")
	if !strings.HasPrefix(text, "gemini:") {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(text, "gemini:")
	key, value, _ := strings.Cut(rest, " ")
	key = strings.TrimSpace(key)
	if key == "" {
		return Directive{}, false
	}
	return Directive{Key: key, Value: strings.TrimSpace(value), Pos: c.Pos()}, true
}

// directives returns every //gemini:key directive in the comment group, in
// order. A nil group is fine.
func directives(g *ast.CommentGroup) []Directive {
	if g == nil {
		return nil
	}
	var out []Directive
	for _, c := range g.List {
		if d, ok := parseDirective(c); ok {
			out = append(out, d)
		}
	}
	return out
}

// hasDirective reports whether the comment group carries //gemini:key, and
// returns its value.
func hasDirective(g *ast.CommentGroup, key string) (string, bool) {
	for _, d := range directives(g) {
		if d.Key == key {
			return d.Value, true
		}
	}
	return "", false
}

// PackageDirective reports whether any file-level comment in the package
// carries //gemini:key (package-wide opt-ins like //gemini:deterministic
// are conventionally written next to the package clause).
func (pkg *Package) PackageDirective(key string) bool {
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			if _, ok := hasDirective(g, key); ok {
				return true
			}
		}
	}
	return false
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		FingerprintAnalyzer,
		LockHygieneAnalyzer,
		HotPathAllocAnalyzer,
		ErrClassAnalyzer,
		ExportedDocAnalyzer,
	}
}

// Run executes the analyzers over the packages and returns every finding,
// sorted by position. An analyzer error aborts the run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
			diags = append(diags, pass.diags...)
		}
	}
	sort.Slice(diags, func(a, b int) bool {
		da, db := diags[a], diags[b]
		if da.Pos.Filename != db.Pos.Filename {
			return da.Pos.Filename < db.Pos.Filename
		}
		if da.Pos.Line != db.Pos.Line {
			return da.Pos.Line < db.Pos.Line
		}
		if da.Pos.Column != db.Pos.Column {
			return da.Pos.Column < db.Pos.Column
		}
		return da.Analyzer < db.Analyzer
	})
	return diags, nil
}
