package space

import (
	"math/big"
	"testing"
)

func TestPartitionsKnownValues(t *testing.T) {
	// OEIS A000041.
	want := map[int]int64{0: 1, 1: 1, 2: 2, 3: 3, 4: 5, 5: 7, 10: 42, 20: 627, 36: 17977, 100: 0}
	for m, w := range want {
		if m == 100 {
			continue
		}
		if got := Partitions(m); got.Int64() != w {
			t.Errorf("p(%d) = %v, want %d", m, got, w)
		}
	}
	// p(100) = 190569292.
	if got := Partitions(100); got.Cmp(big.NewInt(190569292)) != 0 {
		t.Errorf("p(100) = %v", got)
	}
	if Partitions(-1).Sign() != 0 {
		t.Error("p(-1) should be 0")
	}
}

func TestGeminiLowerBoundSmall(t *testing.T) {
	// N=1, M=2: sum has single term i=0: C(1,0)*C(0,0)*4^1 = 4; times 2! = 8.
	if got := GeminiLowerBound(2, 1); got.Int64() != 8 {
		t.Errorf("LB(2,1) = %v, want 8", got)
	}
	// Degenerate inputs.
	if GeminiLowerBound(0, 1).Sign() != 0 || GeminiLowerBound(4, 5).Sign() != 0 {
		t.Error("degenerate bounds should be 0")
	}
}

func TestGeminiDwarfsTangram(t *testing.T) {
	// The paper's central size claim: the encoding's space vastly exceeds
	// the stripe heuristic's for realistic M, N.
	cases := []struct{ m, n int }{{16, 4}, {36, 8}, {36, 18}, {64, 12}, {128, 16}}
	for _, c := range cases {
		adv := LogAdvantage(c.m, c.n)
		if adv < 3 { // at least a 1000x gap
			t.Errorf("M=%d N=%d advantage = 10^%.1f, want >= 10^3", c.m, c.n, adv)
		}
	}
}

func TestLowerBoundGrowsWithM(t *testing.T) {
	prev := new(big.Int)
	for m := 8; m <= 64; m *= 2 {
		v := GeminiLowerBound(m, 4)
		if v.Cmp(prev) <= 0 {
			t.Errorf("LB(%d,4) = %v not larger than previous", m, v)
		}
		prev = v
	}
}

func TestLog10Accuracy(t *testing.T) {
	if got := Log10(big.NewInt(1000)); got < 2.999 || got > 3.001 {
		t.Errorf("Log10(1000) = %v", got)
	}
	// 2^200: log10 = 200*log10(2) = 60.205...
	v := new(big.Int).Lsh(big.NewInt(1), 200)
	if got := Log10(v); got < 60.2 || got > 60.21 {
		t.Errorf("Log10(2^200) = %v", got)
	}
	if Log10(big.NewInt(0)) != 0 || Log10(big.NewInt(-5)) != 0 {
		t.Error("non-positive values should log to 0")
	}
}

func TestGroupWeightPositive(t *testing.T) {
	if w := GroupWeight(36, 6); w <= 1 {
		t.Errorf("weight = %v, want > 1", w)
	}
	if w := GroupWeight(1, 1); w < 1 {
		t.Errorf("degenerate weight = %v, want >= 1", w)
	}
	if GroupWeight(36, 12) <= GroupWeight(36, 2) {
		t.Error("more layers should mean a larger space weight")
	}
}

func TestFactorialAndBinomial(t *testing.T) {
	if factorial(5).Int64() != 120 {
		t.Error("5! wrong")
	}
	if factorial(0).Int64() != 1 {
		t.Error("0! should be 1")
	}
	if binomial(5, 2).Int64() != 10 {
		t.Error("C(5,2) wrong")
	}
	if binomial(3, 5).Sign() != 0 || binomial(3, -1).Sign() != 0 {
		t.Error("out-of-range binomial should be 0")
	}
	if pow4(3).Int64() != 64 {
		t.Error("4^3 wrong")
	}
}
