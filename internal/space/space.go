// Package space computes the sizes of the LP SPM optimization spaces of
// Sec. IV-B: the conservative lower bound of the space defined by Gemini's
// layer-centric encoding and the upper bound of the stripe-based Tangram
// heuristic, using exact big-integer arithmetic.
package space

import (
	"math"
	"math/big"
)

// GeminiLowerBound returns the paper's conservative lower bound for mapping
// N layers onto M cores with D DRAM choices folded into the 4^(N-i) factor:
//
//	M! * sum_{i=0}^{N-1} C(N,i) * C(M-N-1, N-i-1) * 4^(N-i)
func GeminiLowerBound(m, n int) *big.Int {
	total := new(big.Int)
	if n <= 0 || m <= 0 || n > m {
		return total
	}
	for i := 0; i <= n-1; i++ {
		term := new(big.Int).Binomial(int64(n), int64(i))
		c2 := binomial(m-n-1, n-i-1)
		term.Mul(term, c2)
		term.Mul(term, pow4(n-i))
		total.Add(total, term)
	}
	return total.Mul(total, factorial(m))
}

// TangramUpperBound returns N * part(M), the upper bound of the stripe
// heuristic's space, where part is the integer partition function.
func TangramUpperBound(m, n int) *big.Int {
	p := Partitions(m)
	return p.Mul(p, big.NewInt(int64(n)))
}

// Partitions computes the integer partition function p(m) exactly.
func Partitions(m int) *big.Int {
	if m < 0 {
		return new(big.Int)
	}
	// dp[j] = number of partitions of j using parts considered so far.
	dp := make([]*big.Int, m+1)
	for j := range dp {
		dp[j] = new(big.Int)
	}
	dp[0].SetInt64(1)
	for part := 1; part <= m; part++ {
		for j := part; j <= m; j++ {
			dp[j].Add(dp[j], dp[j-part])
		}
	}
	return dp[m]
}

// Log10 approximates log10 of a big integer (0 for non-positive values).
func Log10(v *big.Int) float64 {
	if v.Sign() <= 0 {
		return 0
	}
	bits := v.BitLen()
	if bits <= 53 {
		f, _ := new(big.Float).SetInt(v).Float64()
		return math.Log10(f)
	}
	// v ~ mantissa * 2^(bits-53)
	shifted := new(big.Int).Rsh(v, uint(bits-53))
	f, _ := new(big.Float).SetInt(shifted).Float64()
	return math.Log10(f) + float64(bits-53)*math.Log10(2)
}

// LogAdvantage returns log10(Gemini lower bound / Tangram upper bound),
// the size gap the paper highlights.
func LogAdvantage(m, n int) float64 {
	return Log10(GeminiLowerBound(m, n)) - Log10(TangramUpperBound(m, n))
}

// GroupWeight returns the SA group-selection weight proportional to the
// optimization-space size (paper Sec. V-B1); the log keeps weights within
// a usable dynamic range across group sizes.
func GroupWeight(m, n int) float64 {
	w := Log10(GeminiLowerBound(m, n))
	if w < 1 {
		w = 1
	}
	return w
}

func factorial(n int) *big.Int {
	return new(big.Int).MulRange(1, int64(n))
}

func binomial(n, k int) *big.Int {
	if k < 0 || n < 0 || k > n {
		return new(big.Int)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

func pow4(e int) *big.Int {
	return new(big.Int).Lsh(big.NewInt(1), uint(2*e))
}
