#!/usr/bin/env bash
# Runs the PR-2 DSE-session benchmark set — cold vs warm shared-cache sweep,
# restarts=1 vs restarts=4 portfolios — plus the PR-1 hot-loop benchmarks,
# and emits a BENCH_2-style JSON report on stdout: ns/op, B/op and allocs/op
# per benchmark. CI uploads the result as an artifact and gates on
# cmd/bench-compare (>10% regression vs the committed BENCH_1.json fails the
# build; the warm sweep must stay >= 2x faster than cold).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-10x}"
PATTERN='BenchmarkSAOptimize$|BenchmarkEvaluateGroup$|BenchmarkDSESessionSweepCold$|BenchmarkDSESessionSweepWarm$|BenchmarkDSESweepRestarts1$|BenchmarkDSESweepRestarts4$'
OUT="$(go test -run '^$' -bench "$PATTERN" -benchmem -benchtime="$BENCHTIME" .)"

echo "$OUT" >&2

echo "$OUT" | awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; bytes = ""; allocs = ""
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "ns/op") ns = $i
		if ($(i+1) == "B/op") bytes = $i
		if ($(i+1) == "allocs/op") allocs = $i
	}
	if (ns == "") next
	if (!first) printf ",\n"
	first = 0
	printf "  \"%s\": { \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s }", name, ns, bytes, allocs
}
END { print "\n}" }
'
