#!/usr/bin/env bash
# Runs the hot-loop benchmark smoke and emits a BENCH_1-style JSON report on
# stdout: ns/op, B/op and allocs/op for BenchmarkSAOptimize and
# BenchmarkEvaluateGroup. CI uploads the result as an artifact to track the
# perf trajectory; the committed BENCH_1.json additionally records the
# pre-optimization baseline this PR was measured against.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-5x}"
OUT="$(go test -run '^$' -bench 'BenchmarkSAOptimize$|BenchmarkEvaluateGroup$' \
	-benchmem -benchtime="$BENCHTIME" .)"

echo "$OUT" >&2

echo "$OUT" | awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	if (!first) printf ",\n"
	first = 0
	printf "  \"%s\": { \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s }", name, $3, $5, $7
}
END { print "\n}" }
'
