#!/usr/bin/env bash
# CI coverage ratchet for the scheduler-facing packages: internal/serve
# (queue, preemption, streams), internal/dse (spec decode, sessions,
# dispatch) and internal/fleet (shard leases, incumbent broadcast,
# checkpoint merge). The floor is a ratchet — raise it when coverage
# genuinely improves, never lower it to make a PR pass. Measured 89.7%
# when the gate was introduced (fleet joined at 91.3%); the floor keeps
# headroom for timing-dependent paths (preemption races and lease-expiry
# races hit different branches run to run).
set -eu

FLOOR="${COVERAGE_FLOOR:-85.0}"
PROFILE="${COVERAGE_PROFILE:-coverage.out}"

go test -count=1 -coverprofile="$PROFILE" \
    -coverpkg=./internal/serve,./internal/dse,./internal/fleet \
    ./internal/serve ./internal/dse ./internal/fleet

total=$(go tool cover -func="$PROFILE" | awk '/^total:/ {sub(/%/, "", $NF); print $NF}')
if [ -z "$total" ]; then
    echo "coverage.sh: FAIL — could not read total coverage from $PROFILE"
    exit 1
fi

echo "coverage.sh: total ${total}% (floor ${FLOOR}%)"
if awk -v t="$total" -v f="$FLOOR" 'BEGIN { exit !(t < f) }'; then
    echo "coverage.sh: FAIL — coverage ${total}% fell below the ${FLOOR}% floor"
    exit 1
fi
echo "coverage.sh: ok"
