#!/usr/bin/env bash
# CI coverage ratchet for the scheduler-facing packages: internal/serve
# (queue, preemption, streams) and internal/dse (spec decode, sessions,
# dispatch). The floor is a ratchet — raise it when coverage genuinely
# improves, never lower it to make a PR pass. Measured 89.7% when the
# gate was introduced; the floor keeps headroom for timing-dependent
# paths (preemption races hit different branches run to run).
set -eu

FLOOR="${COVERAGE_FLOOR:-85.0}"
PROFILE="${COVERAGE_PROFILE:-coverage.out}"

go test -count=1 -coverprofile="$PROFILE" \
    -coverpkg=./internal/serve,./internal/dse \
    ./internal/serve ./internal/dse

total=$(go tool cover -func="$PROFILE" | awk '/^total:/ {sub(/%/, "", $NF); print $NF}')
if [ -z "$total" ]; then
    echo "coverage.sh: FAIL — could not read total coverage from $PROFILE"
    exit 1
fi

echo "coverage.sh: total ${total}% (floor ${FLOOR}%)"
if awk -v t="$total" -v f="$FLOOR" 'BEGIN { exit !(t < f) }'; then
    echo "coverage.sh: FAIL — coverage ${total}% fell below the ${FLOOR}% floor"
    exit 1
fi
echo "coverage.sh: ok"
