#!/usr/bin/env bash
# Runs the PR-10 distributed-fleet benchmark set — the 2-worker
# incumbent-sharing fleet vs one worker draining the same shards with no
# sharing — plus the full PR-8 racing/cut-bound, PR-5
# pruning/abandonment/disk-warm and PR-1/2/3 hot-loop, session and
# scheduler benchmarks, and emits a BENCH_10-style JSON report on stdout:
# ns/op, B/op, allocs/op and the work-saved accounting per benchmark,
# including the fleet twins' drain times and SA-iteration spends. CI
# uploads the result as an artifact and gates on cmd/bench-compare: the
# fleet must drain the grid >= 1.6x faster than the no-sharing
# independent-shards twin at the identical best, and spend strictly fewer
# total SA iterations (both are also asserted in-bench, so the gate
# double-locks the claims).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-10x}"
PATTERN='BenchmarkSAOptimize$|BenchmarkEvaluateGroup$|BenchmarkDSESessionSweepCold$|BenchmarkDSESessionSweepWarm$|BenchmarkDSESweepRestarts1$|BenchmarkDSESweepRestarts4$|BenchmarkDSESweepGridFixed$|BenchmarkDSESweepOrdered$|BenchmarkDSESweepAdaptive$|BenchmarkDSESweepPR3Bound$|BenchmarkDSESweepTightBound$|BenchmarkDSESweepHardened$|BenchmarkDSESweepInLoopAbandon$|BenchmarkDSESweepDiskWarm$|BenchmarkDSESweepRacing$|BenchmarkDSESweepCutBound$|BenchmarkFleetSweep$'
OUT="$(go test -run '^$' -bench "$PATTERN" -benchmem -benchtime="$BENCHTIME" .)"

echo "$OUT" >&2

echo "$OUT" | awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; bytes = ""; allocs = ""
	pruned = ""; cpruned = ""; abandoned = ""; skipped = ""
	saiters = ""; usaiters = ""; ssaiters = ""; boundary = ""; diskhits = ""
	onew = ""; twow = ""
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "ns/op") ns = $i
		if ($(i+1) == "B/op") bytes = $i
		if ($(i+1) == "allocs/op") allocs = $i
		if ($(i+1) == "pruned_candidates") pruned = $i
		if ($(i+1) == "compulsory_pruned_candidates") cpruned = $i
		if ($(i+1) == "abandoned_restarts") abandoned = $i
		if ($(i+1) == "skipped_restarts") skipped = $i
		if ($(i+1) == "sa_iterations") saiters = $i
		if ($(i+1) == "uniform_sa_iterations") usaiters = $i
		if ($(i+1) == "solo_sa_iterations") ssaiters = $i
		if ($(i+1) == "boundary_sa_iterations") boundary = $i
		if ($(i+1) == "disk_hits") diskhits = $i
		if ($(i+1) == "one_worker_ns") onew = $i
		if ($(i+1) == "two_worker_ns") twow = $i
	}
	if (ns == "") next
	if (!first) printf ",\n"
	first = 0
	printf "  \"%s\": { \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", name, ns, bytes, allocs
	if (pruned != "") printf ", \"pruned_candidates\": %s", pruned
	if (cpruned != "") printf ", \"compulsory_pruned_candidates\": %s", cpruned
	if (abandoned != "") printf ", \"abandoned_restarts\": %s", abandoned
	if (skipped != "") printf ", \"skipped_restarts\": %s", skipped
	if (saiters != "") printf ", \"sa_iterations\": %s", saiters
	if (usaiters != "") printf ", \"uniform_sa_iterations\": %s", usaiters
	if (ssaiters != "") printf ", \"solo_sa_iterations\": %s", ssaiters
	if (boundary != "") printf ", \"boundary_sa_iterations\": %s", boundary
	if (diskhits != "") printf ", \"disk_hits\": %s", diskhits
	if (onew != "") printf ", \"one_worker_ns\": %s", onew
	if (twow != "") printf ", \"two_worker_ns\": %s", twow
	printf " }"
}
END { print "\n}" }
'
