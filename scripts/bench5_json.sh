#!/usr/bin/env bash
# Runs the PR-5 pruning-engine benchmark set — the compulsory-traffic bound
# vs the PR-3 compute+DRAM bound on the weak-first workload, deterministic
# in-loop abandonment, and the disk-warmed sweep — plus the PR-1/2/3
# hot-loop, session and scheduler benchmarks, and emits a BENCH_5-style
# JSON report on stdout: ns/op, B/op, allocs/op and the scheduler's
# work-saved accounting (pruned candidates, abandoned/skipped restarts, SA
# iterations, disk hits) per benchmark. CI uploads the result as an
# artifact and gates on cmd/bench-compare: >10% allocs regression vs the
# committed baselines fails, the warm sweep must stay faster than cold, the
# bound-ordered sweep must not regress vs grid order, the tight-bound sweep
# must stay >= 1.3x faster than the PR-3 bound, the disk-warmed sweep
# must stay within 1.5x of the in-process warm sweep, and the hardened
# (retry + cell-deadline armed, no faults) sweep must stay within a few
# percent of its fault-free twin.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-10x}"
PATTERN='BenchmarkSAOptimize$|BenchmarkEvaluateGroup$|BenchmarkDSESessionSweepCold$|BenchmarkDSESessionSweepWarm$|BenchmarkDSESweepRestarts1$|BenchmarkDSESweepRestarts4$|BenchmarkDSESweepGridFixed$|BenchmarkDSESweepOrdered$|BenchmarkDSESweepAdaptive$|BenchmarkDSESweepPR3Bound$|BenchmarkDSESweepTightBound$|BenchmarkDSESweepHardened$|BenchmarkDSESweepInLoopAbandon$|BenchmarkDSESweepDiskWarm$'
OUT="$(go test -run '^$' -bench "$PATTERN" -benchmem -benchtime="$BENCHTIME" .)"

echo "$OUT" >&2

echo "$OUT" | awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; bytes = ""; allocs = ""
	pruned = ""; abandoned = ""; skipped = ""
	saiters = ""; boundary = ""; diskhits = ""
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "ns/op") ns = $i
		if ($(i+1) == "B/op") bytes = $i
		if ($(i+1) == "allocs/op") allocs = $i
		if ($(i+1) == "pruned_candidates") pruned = $i
		if ($(i+1) == "abandoned_restarts") abandoned = $i
		if ($(i+1) == "skipped_restarts") skipped = $i
		if ($(i+1) == "sa_iterations") saiters = $i
		if ($(i+1) == "boundary_sa_iterations") boundary = $i
		if ($(i+1) == "disk_hits") diskhits = $i
	}
	if (ns == "") next
	if (!first) printf ",\n"
	first = 0
	printf "  \"%s\": { \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", name, ns, bytes, allocs
	if (pruned != "") printf ", \"pruned_candidates\": %s", pruned
	if (abandoned != "") printf ", \"abandoned_restarts\": %s", abandoned
	if (skipped != "") printf ", \"skipped_restarts\": %s", skipped
	if (saiters != "") printf ", \"sa_iterations\": %s", saiters
	if (boundary != "") printf ", \"boundary_sa_iterations\": %s", boundary
	if (diskhits != "") printf ", \"disk_hits\": %s", diskhits
	printf " }"
}
END { print "\n}" }
'
