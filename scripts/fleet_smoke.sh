#!/usr/bin/env bash
# Smoke-test the distributed sweep fleet end to end, the way CI exercises
# it: build gemini-serve, start a coordinator with a short lease TTL and
# two loopback worker processes, submit a sharded fleet sweep, SIGKILL one
# worker mid-sweep, and assert the sweep still finishes with the orphaned
# shards re-leased (expired_leases >= 1), zero settled cells recomputed,
# and a best bit-identical to the same spec swept single-process through
# POST /sweep.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${FLEET_SMOKE_PORT:-18292}"
WORK="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/gemini-serve" ./cmd/gemini-serve

"$WORK/gemini-serve" -addr "127.0.0.1:$PORT" -data "$WORK/data" -lease-ttl 2s \
    >"$WORK/server.log" 2>&1 &
SERVER_PID=$!
PIDS+=("$SERVER_PID")
disown "$SERVER_PID"

fail() {
    echo "fleet_smoke: $1" >&2
    for log in server w1 w2; do
        echo "--- $log log ---" >&2
        cat "$WORK/$log.log" >&2 2>/dev/null || true
    done
    exit 1
}

for _ in $(seq 1 50); do
    if curl -fsS "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.2
done
curl -fsS "http://127.0.0.1:$PORT/healthz" >/dev/null || fail "server never became healthy"

# Four same-strength candidates so every shard costs real SA work (nothing
# prunes to zero and collapses the kill window).
SPACE='{"tops": 72, "cuts": [1], "dram_per_tops": [2], "noc_gbps": [32, 48, 64, 96],
        "d2d_ratios": [0.5], "glb_kb": [1024], "macs": [1024]}'
SPEC_BODY='"space": '"$SPACE"', "models": ["tinycnn"], "sa_iterations": 30000, "prune": true'

echo "fleet_smoke: reference single-process sweep"
curl -fsS -N -X POST "http://127.0.0.1:$PORT/sweep" \
    -d '{"id": "fleet-smoke-ref", '"$SPEC_BODY"'}' >"$WORK/ref.ndjson" \
    || fail "reference POST /sweep failed"
grep -q '"type":"done"' "$WORK/ref.ndjson" || fail "reference sweep did not finish"
curl -fsS "http://127.0.0.1:$PORT/sweeps/fleet-smoke-ref" >"$WORK/ref.json"
REF_BEST="$(tr -d ' \n\t' <"$WORK/ref.json" | grep -o '"best":{[^}]*}')"
REF_OBJ="$(echo "$REF_BEST" | sed -E 's/.*"objective":([^,}]+).*/\1/')"
REF_ARCH="$(echo "$REF_BEST" | sed -E 's/.*"arch":"([^"]*)".*/\1/')"
[ -n "$REF_OBJ" ] || fail "could not extract the reference best objective"

echo "fleet_smoke: starting two workers"
"$WORK/gemini-serve" -worker "http://127.0.0.1:$PORT" -worker-name w1 \
    -worker-poll 100ms >"$WORK/w1.log" 2>&1 &
PIDS+=("$!")
disown "$!"
"$WORK/gemini-serve" -worker "http://127.0.0.1:$PORT" -worker-name w2 \
    -worker-poll 100ms >"$WORK/w2.log" 2>&1 &
W2_PID=$!
PIDS+=("$W2_PID")
disown "$W2_PID"

echo "fleet_smoke: submitting the sharded fleet sweep"
curl -fsS -X POST "http://127.0.0.1:$PORT/fleet/sweeps" \
    -d '{"spec": {"id": "fleet-smoke", '"$SPEC_BODY"'}, "shards": 4}' >/dev/null \
    || fail "POST /fleet/sweeps failed"

# Wait until w2 holds a live lease, then SIGKILL it mid-shard. Its lease
# can only lapse (TTL 2s) — the coordinator must re-lease the orphaned
# shard to w1.
KILLED=0
for _ in $(seq 1 300); do
    curl -fsS "http://127.0.0.1:$PORT/fleet/sweeps/fleet-smoke" >"$WORK/status.json" || true
    if grep -q '"worker": "w2"' "$WORK/status.json"; then
        kill -KILL "$W2_PID"
        KILLED=1
        echo "fleet_smoke: SIGKILLed w2 while it held a lease"
        break
    fi
    grep -q '"state": "done"' "$WORK/status.json" && break
    sleep 0.1
done
[ "$KILLED" -eq 1 ] || fail "sweep finished before w2 ever held a lease — grow sa_iterations"

DONE=0
for _ in $(seq 1 240); do
    curl -fsS "http://127.0.0.1:$PORT/fleet/sweeps/fleet-smoke" >"$WORK/status.json" || true
    if grep -q '"state": "done"' "$WORK/status.json"; then
        DONE=1
        break
    fi
    sleep 0.5
done
[ "$DONE" -eq 1 ] || fail "fleet sweep never finished after the worker kill"

COMPACT="$(tr -d ' \n\t' <"$WORK/status.json")"
EXPIRED="$(echo "$COMPACT" | sed -E 's/.*"expired_leases":([0-9]+).*/\1/')"
[ "$EXPIRED" -ge 1 ] || fail "no lease expired after SIGKILL (expired_leases=$EXPIRED)"
echo "$COMPACT" | grep -q '"recomputed_settled_cells":0' \
    || fail "re-shard recomputed settled cells: $COMPACT"

FLEET_INC="$(echo "$COMPACT" | grep -o '"incumbent":{[^}]*}')"
FLEET_OBJ="$(echo "$FLEET_INC" | sed -E 's/.*"objective":([^,}]+).*/\1/')"
FLEET_CAND="$(echo "$FLEET_INC" | sed -E 's/.*"candidate":"([^"]*)".*/\1/')"
[ "$FLEET_OBJ" = "$REF_OBJ" ] \
    || fail "fleet best $FLEET_OBJ != single-process best $REF_OBJ"
[ "$FLEET_CAND" = "$REF_ARCH" ] \
    || fail "fleet best candidate '$FLEET_CAND' != single-process '$REF_ARCH'"

echo "fleet_smoke: OK (w2 killed mid-sweep, $EXPIRED lease(s) expired and re-leased, 0 settled cells recomputed, best identical: $FLEET_OBJ @ $FLEET_CAND)"
