#!/usr/bin/env bash
# Smoke-test the HTTP sweep service end to end, the way CI exercises it:
# build gemini-serve, start it with checkpoint persistence, run one reduced
# sweep via curl and assert a non-empty typed NDJSON stream, re-run the
# sweep and assert it resumes (zero recomputed cells), then SIGTERM the
# server and require a clean shutdown.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${SERVE_SMOKE_PORT:-18291}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

go build -o "$WORK/gemini-serve" ./cmd/gemini-serve

"$WORK/gemini-serve" -addr "127.0.0.1:$PORT" -data "$WORK/data" >"$WORK/server.log" 2>&1 &
SERVER_PID=$!

fail() {
    echo "serve_smoke: $1" >&2
    echo "--- server log ---" >&2
    cat "$WORK/server.log" >&2 || true
    kill "$SERVER_PID" 2>/dev/null || true
    exit 1
}

# Wait for the server to come up.
for _ in $(seq 1 50); do
    if curl -fsS "http://127.0.0.1:$PORT/healthz" >"$WORK/health.json" 2>/dev/null; then
        break
    fi
    sleep 0.2
done
[ -s "$WORK/health.json" ] || fail "server never became healthy"
grep -q '"status": "ok"' "$WORK/health.json" || fail "healthz not ok"

SPEC='{
  "id": "ci-smoke",
  "space": {"tops": 72, "cuts": [1], "dram_per_tops": [2], "noc_gbps": [32, 64],
            "d2d_ratios": [0.5], "glb_kb": [1024], "macs": [1024]},
  "models": ["tinycnn"],
  "sa_iterations": 100,
  "prune": true
}'

echo "serve_smoke: first sweep (cold)"
curl -fsS -N -X POST "http://127.0.0.1:$PORT/sweep" -d "$SPEC" >"$WORK/stream1.ndjson" \
    || fail "POST /sweep failed"
[ -s "$WORK/stream1.ndjson" ] || fail "empty stream"
grep -q '"type":"start"' "$WORK/stream1.ndjson" || fail "no start event"
grep -q '"type":"result"' "$WORK/stream1.ndjson" || fail "no result events"
grep -q '"type":"done"' "$WORK/stream1.ndjson" || fail "no done event"
RESULTS=$(grep -c '"type":"result"' "$WORK/stream1.ndjson")
[ "$RESULTS" -eq 2 ] || fail "expected 2 result events, got $RESULTS"

echo "serve_smoke: second sweep (must resume from the checkpoint)"
curl -fsS -N -X POST "http://127.0.0.1:$PORT/sweep" -d "$SPEC" >"$WORK/stream2.ndjson" \
    || fail "resume POST failed"
grep -q '"type":"done"' "$WORK/stream2.ndjson" || fail "resumed sweep did not finish"
grep -q '"resumed_cells":2' "$WORK/stream2.ndjson" || fail "resumed sweep recomputed cells: $(tail -1 "$WORK/stream2.ndjson")"

curl -fsS "http://127.0.0.1:$PORT/sweeps/ci-smoke" | grep -q '"state": "done"' \
    || fail "sweep status is not done"

echo "serve_smoke: clean shutdown"
kill -TERM "$SERVER_PID"
SHUTDOWN_OK=0
for _ in $(seq 1 50); do
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        SHUTDOWN_OK=1
        break
    fi
    sleep 0.2
done
[ "$SHUTDOWN_OK" -eq 1 ] || fail "server did not exit on SIGTERM"
wait "$SERVER_PID" || fail "server exited non-zero"
grep -q "shutdown complete" "$WORK/server.log" || fail "no clean-shutdown log line"

echo "serve_smoke: OK (streamed $RESULTS candidates, resumed 2/2 cells, clean shutdown)"
