#!/usr/bin/env bash
# Runs the PR-3 sweep-scheduler benchmark set — grid vs bound-ordered
# dispatch and fixed vs adaptive SA portfolios under bound pruning — plus
# the PR-1 hot-loop and PR-2 session benchmarks, and emits a BENCH_3-style
# JSON report on stdout: ns/op, B/op, allocs/op and the scheduler's
# work-saved accounting (pruned candidates, abandoned/skipped restarts) per
# benchmark. CI uploads the result as an artifact and gates on
# cmd/bench-compare: >10% allocs regression vs the committed BENCH_1/BENCH_2
# baselines fails, the warm sweep must stay faster than cold, and the
# bound-ordered sweep must not regress vs grid order.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-10x}"
PATTERN='BenchmarkSAOptimize$|BenchmarkEvaluateGroup$|BenchmarkDSESessionSweepCold$|BenchmarkDSESessionSweepWarm$|BenchmarkDSESweepRestarts1$|BenchmarkDSESweepRestarts4$|BenchmarkDSESweepGridFixed$|BenchmarkDSESweepOrdered$|BenchmarkDSESweepAdaptive$'
OUT="$(go test -run '^$' -bench "$PATTERN" -benchmem -benchtime="$BENCHTIME" .)"

echo "$OUT" >&2

echo "$OUT" | awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; bytes = ""; allocs = ""
	pruned = ""; abandoned = ""; skipped = ""
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "ns/op") ns = $i
		if ($(i+1) == "B/op") bytes = $i
		if ($(i+1) == "allocs/op") allocs = $i
		if ($(i+1) == "pruned_candidates") pruned = $i
		if ($(i+1) == "abandoned_restarts") abandoned = $i
		if ($(i+1) == "skipped_restarts") skipped = $i
	}
	if (ns == "") next
	if (!first) printf ",\n"
	first = 0
	printf "  \"%s\": { \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", name, ns, bytes, allocs
	if (pruned != "") printf ", \"pruned_candidates\": %s", pruned
	if (abandoned != "") printf ", \"abandoned_restarts\": %s", abandoned
	if (skipped != "") printf ", \"skipped_restarts\": %s", skipped
	printf " }"
}
END { print "\n}" }
'
