#!/usr/bin/env bash
# CI lint gate: `go vet` must produce no output at all (an output assertion,
# not just an exit-code check: vet prints some findings without failing), and
# the geminilint suite (internal/lint, docs/lint.md) must report zero
# findings. Run from the repo root; exits non-zero on any finding.
set -u

echo "== go vet ./... =="
vet_out=$(go vet ./... 2>&1)
vet_rc=$?
if [ "$vet_rc" -ne 0 ] || [ -n "$vet_out" ]; then
    printf '%s\n' "$vet_out"
    echo "lint.sh: FAIL — go vet produced output (asserted empty)"
    exit 1
fi

echo "== geminilint ./... =="
if ! go run ./cmd/geminilint ./...; then
    echo "lint.sh: FAIL — geminilint reported findings (see docs/lint.md for suppression syntax)"
    exit 1
fi

echo "lint.sh: clean"
