// Chiplet-reuse example (Sec. VII-B): take the 72 TOPs G-Arch chiplet and
// replicate it into 2x and 4x accelerators, comparing each scaled design's
// MC, energy and delay against the original to show where "one chiplet for
// multiple accelerators" pays off and where it strains.
package main

import (
	"fmt"
	"log"

	"gemini"
)

func main() {
	base := gemini.GArch72()
	model, err := gemini.LoadModel("transformer")
	if err != nil {
		log.Fatal(err)
	}
	opt := gemini.DefaultMapOptions()
	opt.Batch = 64
	opt.SAIterations = 400

	fmt.Println("scale  architecture                                        TOPs   MC($)   energy(J)  delay(s)  MC*E*D")
	for _, factor := range []int{1, 2, 4} {
		cfg, err := gemini.ScaleArch(base, factor)
		if err != nil {
			log.Fatal(err)
		}
		m, err := gemini.Map(&cfg, model, opt)
		if err != nil {
			log.Fatal(err)
		}
		mc := gemini.MonetaryCost(&cfg)
		fmt.Printf("%4dx  %-50s %6.0f  %6.2f  %9.4g  %8.4g  %.4g\n",
			factor, cfg.Name, cfg.TOPS(), mc.Total(),
			m.Result.Energy.Total(), m.Result.Delay,
			mc.Total()*m.Result.Energy.Total()*m.Result.Delay)
	}
	fmt.Println("\nThe same chiplet serves all three accelerators; only the substrate,")
	fmt.Println("IO dies and DRAM change — the NRE-saving reuse story of Sec. VII-B.")
}
