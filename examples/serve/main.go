// Serve example: run the DSE sweep service end to end in one process —
// start the HTTP server on a local port, POST a tiny sweep spec, consume
// the NDJSON result stream, then read the sweep's final status and the
// server's health metrics. The same flow works against a long-lived
// `gemini-serve` deployment; see docs/http-api.md for the full API.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"gemini/internal/dse"
	"gemini/internal/serve"
)

func main() {
	// A real deployment runs `gemini-serve`; here the server lives in
	// process on an ephemeral port.
	srv := serve.New(serve.Config{DataDir: "serve-example-data", Logf: log.Printf})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, srv) }()
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// A two-candidate sweep over the tiny test CNN: cheap enough to watch
	// stream in real time. Re-running this example resumes from the
	// checkpoint under serve-example-data/ and recomputes nothing.
	spec := dse.Spec{
		ID: "example-sweep",
		Space: dse.SpaceSpec{
			TOPS: 72, Cuts: []int{1}, DRAMPerTOPS: []float64{2},
			NoCBWs: []float64{32, 64}, D2DRatios: []float64{0.5},
			GLBsKB: []int{1024}, MACs: []int{1024},
		},
		Models:       []string{"tinycnn"},
		SAIterations: 100,
		Prune:        true,
	}
	body, err := json.Marshal(spec)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST /sweep: %s", resp.Status)
	}

	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev serve.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			log.Fatal(err)
		}
		switch ev.Type {
		case "start":
			fmt.Printf("sweep %s: %d candidates x %v (%d cells, %d already checkpointed)\n",
				ev.SweepID, ev.Candidates, ev.Models, ev.Cells, ev.CheckpointCells)
		case "result":
			r := ev.Result
			if r.Status == "ok" {
				fmt.Printf("  [%d] %-44s obj=%.4g E=%.3gJ D=%.3gs\n", ev.Seq, r.Arch, r.Objective, r.EnergyJ, r.DelayS)
			} else {
				fmt.Printf("  [%d] %-44s %s\n", ev.Seq, r.Arch, r.Status)
			}
		case "done":
			fmt.Printf("done in %dms: best %s (obj=%.4g), %d/%d cells resumed, %d candidates pruned\n",
				ev.ElapsedMS, ev.Best.Arch, ev.Best.Objective,
				ev.Stats.ResumedCells, ev.Stats.Cells, ev.Stats.PrunedCandidates)
		case "error":
			log.Fatalf("sweep failed: %s", ev.Error)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	// The status and health endpoints serve monitoring dashboards.
	st, err := http.Get(base + "/sweeps/example-sweep")
	if err != nil {
		log.Fatal(err)
	}
	defer st.Body.Close()
	var status serve.SweepStatus
	if err := json.NewDecoder(st.Body).Decode(&status); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("status: %s (%d/%d candidates, checkpoint on disk: %t)\n",
		status.State, status.DoneCandidates, status.Candidates, status.Checkpoint)

	h, err := http.Get(base + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	defer h.Body.Close()
	var health serve.Health
	if err := json.NewDecoder(h.Body).Decode(&health); err != nil {
		log.Fatal(err)
	}
	for _, ses := range health.Sessions {
		fmt.Printf("session %d: %d cache hits / %d misses, %d checkpoint cells\n",
			ses.Index, ses.CacheHits, ses.CacheMisses, ses.CheckpointCells)
	}
}
