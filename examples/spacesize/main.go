// Space-size example (Sec. IV-B): print the exact optimization-space sizes
// of Gemini's layer-centric encoding versus the Tangram stripe heuristic
// for representative core and layer counts.
package main

import (
	"os"

	"gemini"
)

func main() {
	gemini.PrintSpaceSizes(os.Stdout)
}
