// Custom-model example: define a network in the framework's plain-text
// description format (the paper's Model Parser input), map it, and print
// the per-group energy & delay report.
package main

import (
	"fmt"
	"log"
	"os"

	"gemini"
	"gemini/internal/dnn"
	"gemini/internal/eval"
)

const description = `
# An edge-vision backbone with a residual stage and an attention head.
model edgenet
input  x 64 64 3
conv   c1 x  k=32 r=3 stride=2 pad=1
conv   c2 c1 k=32 r=3 pad=1
conv   c3 c2 k=32 r=3 pad=1
add    a1 c2 c3
pool   p1 a1 r=2 stride=2
conv   c4 p1 k=64 r=3 pad=1
gap    g  c4
fc     emb g k=64
`

func main() {
	model, err := dnn.ParseString(description)
	if err != nil {
		log.Fatal(err)
	}
	cfg := gemini.GArch72()
	opt := gemini.DefaultMapOptions()
	opt.Batch = 16
	opt.SAIterations = 400

	m, err := gemini.Map(&cfg, model, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d layers, %.1f MMACs/sample\n\n", model.Name, len(model.Layers), float64(model.TotalMACs())/1e6)
	rep, err := eval.New(&cfg).Report(m.Scheme)
	if err != nil {
		log.Fatal(err)
	}
	rep.Print(os.Stdout)
}
