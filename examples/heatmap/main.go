// Heatmap example (Fig. 9): map the Transformer onto the 72 TOPs G-Arch and
// render the NoC traffic of its busiest layer group as an ASCII heatmap,
// showing how the SA-explored scheme spreads load compared to stripes.
package main

import (
	"fmt"
	"log"

	"gemini"
)

func main() {
	cfg := gemini.GArch72()
	model, err := gemini.LoadModel("transformer")
	if err != nil {
		log.Fatal(err)
	}
	opt := gemini.DefaultMapOptions()
	opt.Batch = 64
	opt.SAIterations = 1000

	tangram, err := gemini.MapTangram(&cfg, model, opt)
	if err != nil {
		log.Fatal(err)
	}
	mapped, err := gemini.Map(&cfg, model, opt)
	if err != nil {
		log.Fatal(err)
	}

	// Busiest group by per-pass link pressure.
	busiest := 0
	for gi, g := range mapped.Result.Groups {
		if g.MaxLinkLoad > mapped.Result.Groups[busiest].MaxLinkLoad {
			busiest = gi
		}
	}
	_, asciiG, err := gemini.TrafficHeatmap(mapped, busiest)
	if err != nil {
		log.Fatal(err)
	}
	_, asciiT, err := gemini.TrafficHeatmap(tangram, min(busiest, len(tangram.Scheme.Groups)-1))
	if err != nil {
		log.Fatal(err)
	}

	onT, d2dT := gemini.HopStats(tangram)
	onG, d2dG := gemini.HopStats(mapped)
	fmt.Printf("T-Map byte-hops: on-chip %.3g, d2d %.3g\n", onT, d2dT)
	fmt.Printf("G-Map byte-hops: on-chip %.3g, d2d %.3g\n\n", onG, d2dG)
	fmt.Printf("T-Map heatmap of group %d ('|' marks the chiplet cut):\n%s\n", busiest, asciiT)
	fmt.Printf("G-Map heatmap of group %d:\n%s", busiest, asciiG)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
