// DSE example: a miniature architecture/mapping co-exploration in the style
// of Table I, sweeping the 72 TOPs reduced grid with the Transformer
// workload and ranking candidates by MC * E * D.
package main

import (
	"fmt"
	"log"

	"gemini"
)

func main() {
	space := gemini.Space72().Reduced()
	cands := space.Enumerate()
	model, err := gemini.LoadModel("transformer")
	if err != nil {
		log.Fatal(err)
	}

	opt := gemini.DefaultDSEOptions()
	opt.Batch = 64
	opt.SAIterations = 200 // small budget: this is a demo sweep

	fmt.Printf("exploring %d candidates of %s with %s (batch %d)...\n\n",
		len(cands), space.Name, model.Name, opt.Batch)
	results := gemini.ExploreArchitectures(cands, []*gemini.Model{model}, opt)

	fmt.Println("rank  architecture                                      MC($)   energy(J)  delay(s)   MC*E*D")
	for i, r := range results {
		if !r.Feasible || i >= 8 {
			break
		}
		fmt.Printf("%4d  %-48s %7.2f  %9.4g  %8.4g  %.4g\n",
			i+1, r.Cfg.Name, r.MC.Total(), r.Energy, r.Delay, r.Obj)
	}

	best := gemini.BestArchitecture(results)
	fmt.Printf("\noptimal: %s\n", best.Cfg.Name)
	fmt.Printf("paper's full-space 72 TOPs optimum for reference: %s\n", "(2, 36, 144GB/s, 32GB/s, 16GB/s, 2MB, 1024)")
}
