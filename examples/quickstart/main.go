// Quickstart: map ResNet-50 onto the paper's 72 TOPs G-Arch with the
// Gemini Mapping Engine and compare against the Tangram baseline, printing
// delay, energy breakdown and the architecture's monetary cost.
package main

import (
	"fmt"
	"log"

	"gemini"
)

func main() {
	cfg := gemini.GArch72()
	model, err := gemini.LoadModel("resnet50")
	if err != nil {
		log.Fatal(err)
	}

	opt := gemini.DefaultMapOptions()
	opt.Batch = 64
	opt.SAIterations = 800

	baseline, err := gemini.MapTangram(&cfg, model, opt)
	if err != nil {
		log.Fatal(err)
	}
	mapped, err := gemini.Map(&cfg, model, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("architecture: %s  (%.1f TOPs, %d chiplets, %d cores)\n",
		cfg.Name, cfg.TOPS(), cfg.Chiplets(), cfg.Cores())
	mc := gemini.MonetaryCost(&cfg)
	fmt.Printf("monetary cost: $%.2f (silicon %.2f, DRAM %.2f, substrate %.2f)\n\n",
		mc.Total(), mc.Silicon(), mc.DRAM, mc.Substrate)

	show := func(name string, m *gemini.Mapping) {
		e := m.Result.Energy
		fmt.Printf("%-8s delay %.4g s | energy %.4g J (dram %.3g, noc %.3g, d2d %.3g, intra %.3g) | %d groups, %.1f layers/stage\n",
			name, m.Result.Delay, e.Total(), e.DRAM, e.NoC, e.D2D, e.IntraCore(),
			len(m.Scheme.Groups), m.AvgLayersPerGroup)
	}
	show("T-Map:", baseline)
	show("G-Map:", mapped)
	fmt.Printf("\nG-Map vs T-Map: %.2fx performance, %.2fx energy efficiency\n",
		baseline.Result.Delay/mapped.Result.Delay,
		baseline.Result.Energy.Total()/mapped.Result.Energy.Total())
}
