package gemini

import (
	"strings"
	"testing"

	"gemini/internal/dnn"
)

func quickOpts() MapOptions {
	opt := DefaultMapOptions()
	opt.Batch = 4
	opt.SAIterations = 150
	opt.MaxGroupLayers = 7
	opt.BatchUnits = []int{1, 2}
	return opt
}

func TestModelsList(t *testing.T) {
	names := Models()
	if len(names) != 11 {
		t.Fatalf("models = %v, want 11 entries", names)
	}
	for _, want := range []string{"resnet50", "transformer", "googlenet"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing model %q", want)
		}
	}
}

func TestMapPublicAPI(t *testing.T) {
	cfg := GArch72()
	m, err := Map(&cfg, dnn.TinyCNN(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Result.Feasible || m.Result.Delay <= 0 {
		t.Fatalf("bad result: %+v", m.Result)
	}
	if m.Result.EDP() > m.InitialResult.EDP() {
		t.Errorf("SA worsened EDP: %v -> %v", m.InitialResult.EDP(), m.Result.EDP())
	}
	if m.AvgLayersPerGroup <= 0 {
		t.Error("missing pipeline stats")
	}
}

func TestMapTangramBaseline(t *testing.T) {
	cfg := GArch72()
	tm, err := MapTangram(&cfg, dnn.TinyCNN(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Baseline is exactly the initial stripe scheme.
	if tm.Result.EDP() != tm.InitialResult.EDP() {
		t.Error("T-Map should not anneal")
	}
	gm, err := Map(&cfg, dnn.TinyCNN(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if gm.Result.EDP() > tm.Result.EDP() {
		t.Errorf("G-Map EDP %v worse than T-Map %v", gm.Result.EDP(), tm.Result.EDP())
	}
}

func TestMapValidatesInput(t *testing.T) {
	cfg := GArch72()
	cfg.XCut = 5 // invalid
	if _, err := Map(&cfg, dnn.TinyCNN(), quickOpts()); err == nil {
		t.Error("invalid arch accepted")
	}
	cfg2 := GArch72()
	opt := quickOpts()
	opt.Batch = 0
	if _, err := Map(&cfg2, dnn.TinyCNN(), opt); err == nil {
		t.Error("zero batch accepted")
	}
}

func TestMonetaryCostAPI(t *testing.T) {
	s := SimbaArch()
	g := GArch72()
	bs, bg := MonetaryCost(&s), MonetaryCost(&g)
	if bs.Total() <= 0 || bg.Total() <= 0 {
		t.Fatal("non-positive MC")
	}
}

func TestTrafficHeatmapAPI(t *testing.T) {
	cfg := GArch72()
	m, err := Map(&cfg, dnn.TinyTransformer(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	csv, ascii, err := TrafficHeatmap(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv, "from_x") || len(ascii) == 0 {
		t.Error("heatmap outputs malformed")
	}
	if _, _, err := TrafficHeatmap(m, 99); err == nil {
		t.Error("out-of-range group accepted")
	}
	on, _ := HopStats(m)
	if on <= 0 {
		t.Error("hop stats empty")
	}
}

func TestExploreArchitecturesAPI(t *testing.T) {
	cfgA, cfgB := GArch72(), SimbaArch()
	opt := DefaultDSEOptions()
	opt.Batch = 4
	opt.SAIterations = 50
	opt.MaxGroupLayers = 7
	opt.BatchUnits = []int{1, 2}
	results := ExploreArchitectures([]Arch{cfgA, cfgB}, []*Model{dnn.TinyCNN()}, opt)
	best := BestArchitecture(results)
	if best == nil {
		t.Fatal("no feasible architecture")
	}
	if best.Obj <= 0 {
		t.Error("degenerate objective")
	}
}
