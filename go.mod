module gemini

go 1.24
