// Package gemini is a Go reproduction of "Gemini: Mapping and Architecture
// Co-exploration for Large-scale DNN Chiplet Accelerators" (HPCA 2024).
//
// It exposes the framework's two engines — the Mapping Engine (DP graph
// partition + simulated-annealing LP spatial-mapping search over the
// paper's layer-centric encoding) and the Monetary Cost Evaluator — plus
// the exhaustive architecture DSE that ties them together under the
// MC^alpha * E^beta * D^gamma objective.
//
// Quick start:
//
//	cfg := gemini.GArch72()
//	model, _ := gemini.LoadModel("resnet50")
//	m, _ := gemini.Map(&cfg, model, gemini.DefaultMapOptions())
//	fmt.Println(m.Result.Delay, m.Result.Energy.Total())
//
// # Performance notes
//
// The Mapping Engine's hot loop — one SA iteration evaluating a mutated
// layer group — is incremental and allocation-free at steady state:
//
//   - The NoC route table is fully precomputed when an evaluator is built,
//     so routing is a lock-free table lookup, and multicast-tree dedup uses
//     an epoch-stamped visited array instead of per-call map churn.
//   - Group parsing (core.AnalyzeInto) and traffic accumulation reuse
//     pooled per-evaluator scratch buffers; after warm-up an evaluation
//     touches no heap.
//   - Evaluators memoize per-group results keyed by a fingerprint of the
//     group's encoding, the batch, the energy parameters, and — for inputs
//     produced outside the group — the DRAM where each producer's ofmaps
//     live. A group result is therefore invalidated exactly when one of
//     those inputs changes: mutating a group's Partition, Core Groups, or
//     Flow of Data re-evaluates that group, and an ofmap-destination (OF)
//     change additionally re-evaluates only the groups that fetch from it.
//     Rejected-then-retried SA states hit the memo and skip analysis
//     entirely.
//
// The contract this relies on: a *Model (dnn.Graph) must not be mutated
// after schemes referencing it have been evaluated, since memoized results
// are identified by graph pointer. Changing an Evaluator's Params between
// evaluations is safe — parameters are part of the fingerprint — but not
// concurrently with an in-flight evaluation.
//
// All of this is deterministic: a fixed SA seed yields a bit-identical best
// cost and scheme whether results come from the memo or from scratch (see
// TestGoldenSAResNet50), and the DSE layer's (candidate, model) worker pool
// only reorders work, never results. Hot-loop throughput is tracked in
// BENCH_1.json via BenchmarkSAOptimize and BenchmarkEvaluateGroup.
package gemini

import (
	"fmt"
	"io"

	"gemini/internal/arch"
	"gemini/internal/core"
	"gemini/internal/cost"
	"gemini/internal/dnn"
	"gemini/internal/dse"
	"gemini/internal/eval"
	"gemini/internal/experiments"
	"gemini/internal/graphpart"
	"gemini/internal/noc"
	"gemini/internal/sa"
)

// Arch is the configurable hardware template (paper Sec. III).
type Arch = arch.Config

// Model is a DNN DAG.
type Model = dnn.Graph

// Scheme is an encoded LP spatial mapping (paper Sec. IV).
type Scheme = core.Scheme

// EvalResult is a mapping's delay/energy evaluation.
type EvalResult = eval.Result

// MCBreakdown is a monetary-cost breakdown (paper Sec. V-C).
type MCBreakdown = cost.Breakdown

// Architecture presets from the paper's evaluation.
var (
	SimbaArch  = arch.Simba
	GArch72    = arch.GArch72
	Grayskull  = arch.Grayskull
	GArchTorus = arch.GArchTorus
)

// Models lists the built-in workload zoo (paper Sec. VI-A3).
func Models() []string { return dnn.ModelNames() }

// LoadModel builds a zoo model by name (resnet50, resnext50,
// inceptionresnet, pnasnet, googlenet, transformer, transformerlarge).
func LoadModel(name string) (*Model, error) { return dnn.Model(name) }

// MapOptions configures the Mapping Engine.
type MapOptions struct {
	// Batch is the inference batch size (64 = throughput scenario, 1 =
	// latency scenario; paper Sec. VI-A1).
	Batch int
	// SAIterations controls the LP SPM annealing budget; 0 disables SA and
	// yields the heuristic stripe mapping (the T-Map baseline).
	SAIterations int
	Seed         int64
	// Beta, Gamma are the mapping objective exponents of E^beta * D^gamma.
	Beta, Gamma float64
	// MaxGroupLayers bounds layer-group size in the graph partitioner.
	MaxGroupLayers int
	// BatchUnits are candidate samples-per-pass values.
	BatchUnits []int
}

// DefaultMapOptions returns throughput-scenario defaults.
func DefaultMapOptions() MapOptions {
	return MapOptions{
		Batch:        64,
		SAIterations: 1500,
		Seed:         1,
		Beta:         1,
		Gamma:        1,
		BatchUnits:   []int{1, 2, 4, 8},
	}
}

// Mapping is the Mapping Engine's output for one DNN on one architecture.
type Mapping struct {
	Arch   Arch
	Scheme *Scheme
	Result EvalResult

	// InitialResult is the stripe (T-Map-style) starting point, for
	// improvement accounting.
	InitialResult EvalResult
	// AvgLayersPerGroup is the mean pipeline length (paper Sec. VII-A2).
	AvgLayersPerGroup float64
}

// Map runs the full Mapping Engine (G-Map): DP-based graph partition, then
// the SA search with the paper's five operators over the LP SPM space.
func Map(cfg *Arch, model *Model, opt MapOptions) (*Mapping, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opt.Batch < 1 {
		return nil, fmt.Errorf("gemini: batch %d < 1", opt.Batch)
	}
	ev := eval.New(cfg)
	gp := graphpart.DefaultOptions()
	gp.Beta, gp.Gamma = opt.Beta, opt.Gamma
	if opt.MaxGroupLayers > 0 {
		gp.MaxGroupLayers = opt.MaxGroupLayers
	}
	if len(opt.BatchUnits) > 0 {
		gp.BatchUnits = opt.BatchUnits
	}
	part, err := graphpart.Partition(model, cfg, ev, opt.Batch, gp)
	if err != nil {
		return nil, err
	}
	init := ev.Evaluate(part.Scheme)
	m := &Mapping{Arch: *cfg, Scheme: part.Scheme, Result: init, InitialResult: init}
	if opt.SAIterations > 0 {
		so := sa.DefaultOptions()
		so.Iterations = opt.SAIterations
		so.Seed = opt.Seed
		so.Beta, so.Gamma = opt.Beta, opt.Gamma
		r := sa.Optimize(part.Scheme, ev, so)
		m.Scheme = r.Scheme
		m.Result = r.Eval
	}
	if !m.Result.Feasible {
		return nil, fmt.Errorf("gemini: no feasible mapping for %s on %s", model.Name, cfg.Name)
	}
	m.AvgLayersPerGroup = eval.AvgLayersPerGroup(m.Scheme)
	return m, nil
}

// MapTangram runs the T-Map baseline: the same DP graph partition with the
// heuristic stripe-based SPM and no SA refinement.
func MapTangram(cfg *Arch, model *Model, opt MapOptions) (*Mapping, error) {
	opt.SAIterations = 0
	return Map(cfg, model, opt)
}

// MonetaryCost evaluates the architecture's MC (paper Sec. V-C).
func MonetaryCost(cfg *Arch) MCBreakdown {
	return cost.New().Evaluate(cfg)
}

// TrafficHeatmap renders the per-link traffic of one layer group of a
// mapping (Fig. 9). It returns the CSV rows and an ASCII rendering.
func TrafficHeatmap(m *Mapping, group int) (csv, ascii string, err error) {
	if group < 0 || group >= len(m.Scheme.Groups) {
		return "", "", fmt.Errorf("gemini: group %d out of range", group)
	}
	an, err := core.Analyze(m.Scheme, group, &m.Arch)
	if err != nil {
		return "", "", err
	}
	net := noc.New(&m.Arch)
	tr := net.NewTraffic()
	for _, f := range an.ActFlows {
		tr.AddMulticast(f.Src, f.Dsts, f.Bytes)
	}
	for _, f := range an.ActDRAM {
		if f.Write {
			tr.AddDRAMWrite(f.Ctrl, f.Cores[0], f.Bytes)
		} else {
			tr.AddDRAMReadMulticast(f.Ctrl, f.Cores, f.Bytes)
		}
	}
	return tr.CSV(), tr.ASCII(), nil
}

// HopStats reports total on-chip and D2D byte-hops of a mapping, the
// quantities Fig. 9 compares between Tangram and Gemini schemes.
func HopStats(m *Mapping) (onchip, d2d float64) {
	for _, g := range m.Result.Groups {
		onchip += g.NoCBytes
		d2d += g.D2DBytes
	}
	return onchip, d2d
}

// DSE re-exports: spaces, options and the explorer itself.
type (
	// DSEOptions configures ExploreArchitectures.
	DSEOptions = dse.Options
	// DSEObjective is the MC^alpha E^beta D^gamma exponent triple.
	DSEObjective = dse.Objective
	// DSESpace is a Table I-style candidate grid.
	DSESpace = dse.Space
	// DSEResult is one candidate's outcome.
	DSEResult = dse.CandidateResult
)

// Table I candidate spaces.
var (
	Space72  = dse.Space72
	Space128 = dse.Space128
	Space512 = dse.Space512
)

// DefaultDSEOptions returns the paper's default DSE settings.
func DefaultDSEOptions() DSEOptions { return dse.DefaultOptions() }

// ExploreArchitectures runs the exhaustive co-exploration over the
// candidate list for the given workloads and returns candidates sorted by
// the MC^alpha * E^beta * D^gamma objective.
func ExploreArchitectures(cands []Arch, models []*Model, opt DSEOptions) []DSEResult {
	return dse.Run(cands, models, opt)
}

// BestArchitecture returns the first feasible DSE result, or nil.
func BestArchitecture(results []DSEResult) *DSEResult { return dse.Best(results) }

// DSESession is a long-lived exploration session: a cross-candidate shared
// evaluation cache, warm per-architecture evaluators, and a checkpoint of
// completed (candidate, model) cells. Re-running overlapping sweeps through
// one session hits warm cache entries; fixed-seed results are bit-identical
// to standalone ExploreArchitectures calls.
type DSESession = dse.Session

// NewDSESession returns an empty exploration session.
func NewDSESession() *DSESession { return dse.NewSession() }

// ScaleArch replicates a base architecture's chiplet to factor x the
// compute, the chiplet-reuse construction of Sec. VII-B.
func ScaleArch(base Arch, factor int) (Arch, error) { return dse.ScaleUp(base, factor) }

// PrintSpaceSizes writes the Sec. IV-B optimization-space size table
// (Gemini's encoding lower bound vs the Tangram heuristic's upper bound).
func PrintSpaceSizes(w io.Writer) { experiments.PrintSpaceSizes(w) }
