package gemini

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"gemini/internal/arch"
	"gemini/internal/core"
	"gemini/internal/dnn"
	"gemini/internal/eval"
	"gemini/internal/graphpart"
	"gemini/internal/isa"
	"gemini/internal/sa"
)

// TestPipelineOnSyntheticGraphs drives the whole stack — DP partition, SA
// refinement, evaluation, instruction compilation and functional execution
// — over randomly generated DNNs, checking the invariants that must hold
// for any workload.
func TestPipelineOnSyntheticGraphs(t *testing.T) {
	cfg := arch.GArch72()
	ev := eval.New(&cfg)
	for seed := int64(0); seed < 12; seed++ {
		g := dnn.Synth(seed, dnn.DefaultSynthParams())
		gp := graphpart.DefaultOptions()
		gp.MaxGroupLayers = 10
		gp.BatchUnits = []int{1, 2}
		part, err := graphpart.Partition(g, &cfg, ev, 4, gp)
		if err != nil {
			t.Fatalf("seed %d: partition: %v", seed, err)
		}
		if err := part.Scheme.Validate(&cfg); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		so := sa.DefaultOptions()
		so.Iterations = 150
		so.Seed = seed
		r := sa.Optimize(part.Scheme, ev, so)
		if err := r.Scheme.Validate(&cfg); err != nil {
			t.Fatalf("seed %d: post-SA: %v", seed, err)
		}
		if r.Cost > r.InitCost*(1+1e-9) {
			t.Fatalf("seed %d: SA worsened cost %v -> %v", seed, r.InitCost, r.Cost)
		}
		res := ev.Evaluate(r.Scheme)
		if !res.Feasible || res.Delay <= 0 || res.Energy.Total() <= 0 {
			t.Fatalf("seed %d: degenerate result %+v", seed, res)
		}
		// Energy conservation: MAC energy equals total MACs x unit energy.
		var macs int64
		for gi := range r.Scheme.Groups {
			an, err := core.Analyze(r.Scheme, gi, &cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range an.Works {
				macs += w.MACs
			}
			// Every group's instruction stream executes cleanly.
			p, err := isa.Compile(an)
			if err != nil {
				t.Fatalf("seed %d group %d: %v", seed, gi, err)
			}
			if _, err := isa.Run(p); err != nil {
				t.Fatalf("seed %d group %d: %v", seed, gi, err)
			}
		}
		// MACs per pass x passes must cover the whole batch's MACs.
		var passMACs int64
		for gi, grp := range r.Scheme.Groups {
			var gm int64
			an, _ := core.Analyze(r.Scheme, gi, &cfg)
			for _, w := range an.Works {
				gm += w.MACs
			}
			passMACs += gm * int64(res.Groups[gi].Passes)
			_ = grp
		}
		want := g.TotalMACs() * int64(r.Scheme.Batch)
		if passMACs != want {
			t.Fatalf("seed %d: MACs executed %d, want %d", seed, passMACs, want)
		}
	}
}

// TestMapDeterministic verifies that the public pipeline is reproducible.
func TestMapDeterministic(t *testing.T) {
	cfg := GArch72()
	opt := quickOpts()
	a, err := Map(&cfg, dnn.TinyCNN(), opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Map(&cfg, dnn.TinyCNN(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.Delay != b.Result.Delay || a.Result.Energy.Total() != b.Result.Energy.Total() {
		t.Errorf("same seed produced different results: %v/%v vs %v/%v",
			a.Result.Delay, a.Result.Energy.Total(), b.Result.Delay, b.Result.Energy.Total())
	}
}

// TestGMapReducesD2DShareOnSimba checks the paper's automatic-D2D-reduction
// claim end to end on the 36-chiplet architecture.
func TestGMapReducesD2DShareOnSimba(t *testing.T) {
	cfg := SimbaArch()
	opt := quickOpts()
	opt.SAIterations = 600
	tm, err := MapTangram(&cfg, dnn.TinyTransformer(), opt)
	if err != nil {
		t.Fatal(err)
	}
	gm, err := Map(&cfg, dnn.TinyTransformer(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if gm.Result.EDP() > tm.Result.EDP() {
		t.Errorf("G-Map EDP %v worse than T-Map %v", gm.Result.EDP(), tm.Result.EDP())
	}
	if gm.Result.Energy.D2D > tm.Result.Energy.D2D*1.05 {
		t.Errorf("G-Map D2D energy %v should not exceed T-Map %v", gm.Result.Energy.D2D, tm.Result.Energy.D2D)
	}
}

// TestSchemeSaveLoadEvaluatesIdentically round-trips a mapping through JSON
// and confirms the evaluator sees the identical scheme.
func TestSchemeSaveLoadEvaluatesIdentically(t *testing.T) {
	cfg := GArch72()
	m, err := Map(&cfg, dnn.TinyCNN(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Scheme.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.ReadSchemeJSON(&buf, m.Scheme.Graph)
	if err != nil {
		t.Fatal(err)
	}
	ev := eval.New(&cfg)
	a, b := ev.Evaluate(m.Scheme), ev.Evaluate(loaded)
	if a.Delay != b.Delay || math.Abs(a.Energy.Total()-b.Energy.Total()) > 1e-18 {
		t.Errorf("loaded scheme evaluates differently: %v/%v vs %v/%v",
			a.Delay, a.Energy.Total(), b.Delay, b.Energy.Total())
	}
}

// TestRandomOpsNeverBreakPipeline is failure injection at the operator
// level: long random operator sequences must never produce a scheme the
// analyzer, evaluator, or instruction backend rejects.
func TestRandomOpsNeverBreakPipeline(t *testing.T) {
	cfg := arch.GArch72()
	g := dnn.Synth(99, dnn.DefaultSynthParams())
	ids := make([]int, len(g.Layers))
	for i := range ids {
		ids[i] = i
	}
	half := len(ids) / 2
	s, err := core.StripeScheme(g, &cfg, [][]int{ids[:half], ids[half:]}, []int{1, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ev := eval.New(&cfg)
	rng := rand.New(rand.NewSource(123))
	mu := &core.Mutator{Graph: g, Drams: cfg.DRAMControllers(), Rng: rng}
	for i := 0; i < 300; i++ {
		mu.Apply(s.Groups[rng.Intn(2)])
		if i%50 != 0 {
			continue
		}
		if err := s.Validate(&cfg); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		res := ev.Evaluate(s)
		if !res.Feasible {
			t.Fatalf("iteration %d: evaluator rejected operator output", i)
		}
		for gi := range s.Groups {
			an, err := core.Analyze(s, gi, &cfg)
			if err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
			p, err := isa.Compile(an)
			if err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
			if _, err := isa.Run(p); err != nil {
				t.Fatalf("iteration %d group %d: %v", i, gi, err)
			}
		}
	}
}
