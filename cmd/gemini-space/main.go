// Command gemini-space prints the Sec. IV-B optimization-space comparison:
// the exact lower bound of the space defined by Gemini's layer-centric
// encoding against the upper bound of the Tangram stripe heuristic.
package main

import (
	"os"

	"gemini/internal/experiments"
)

func main() {
	experiments.PrintSpaceSizes(os.Stdout)
}
