// Command gemini-reuse reproduces the Fig. 8 chiplet-reuse study
// (Sec. VII-B): accelerators at 128 and 512 TOPs built from Simba chiplets,
// from the other scale's optimal chiplet, from the jointly explored chiplet,
// and from each scale's own optimum.
package main

import (
	"flag"
	"log"
	"os"

	"gemini/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gemini-reuse: ")

	quick := flag.Bool("quick", false, "tiny workloads and small SA budget")
	sa := flag.Int("sa", 0, "override SA iterations (0 = fidelity default)")
	flag.Parse()

	opt := experiments.FullOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	if *sa > 0 {
		opt.SAIterations = *sa
	}
	r, err := experiments.Fig8(opt)
	if err != nil {
		log.Fatal(err)
	}
	r.Print(os.Stdout)
}
