// Command gemini-compare reproduces the paper's overall comparisons, like
// the artifact's compare.sh: Fig. 5 (G-Arch+G-Map vs S-Arch+T-Map vs
// S-Arch+G-Map over five DNNs and two batch sizes) and the Sec. VI-B2
// folded-torus T-Arch comparison.
//
// Usage:
//
//	gemini-compare            # Fig. 5, full workloads
//	gemini-compare -quick     # tiny workloads, seconds
//	gemini-compare -baseline tarch
package main

import (
	"flag"
	"log"
	"os"

	"gemini/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gemini-compare: ")

	quick := flag.Bool("quick", false, "tiny workloads and small SA budget")
	baseline := flag.String("baseline", "simba", "simba (Fig. 5) or tarch (Sec. VI-B2)")
	sa := flag.Int("sa", 0, "override SA iterations (0 = fidelity default)")
	flag.Parse()

	opt := experiments.FullOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	if *sa > 0 {
		opt.SAIterations = *sa
	}

	switch *baseline {
	case "simba":
		r, err := experiments.Fig5(opt)
		if err != nil {
			log.Fatal(err)
		}
		r.Print(os.Stdout)
	case "tarch":
		r, err := experiments.TArch(opt)
		if err != nil {
			log.Fatal(err)
		}
		r.Print(os.Stdout)
	default:
		log.Fatalf("unknown -baseline %q (want simba or tarch)", *baseline)
	}
}
