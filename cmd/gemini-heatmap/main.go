// Command gemini-heatmap reproduces the Fig. 9 network traffic heatmaps:
// the optimal SPM schemes explored by the Tangram stripe heuristic and by
// Gemini for a heavy three-layer Transformer group on the 72 TOPs G-Arch,
// with hop-count and D2D-pressure statistics.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gemini/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gemini-heatmap: ")

	quick := flag.Bool("quick", false, "small SA budget")
	outDir := flag.String("csv", "", "also write tangram.csv / gemini.csv into this directory")
	flag.Parse()

	opt := experiments.FullOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	r, err := experiments.Fig9(opt)
	if err != nil {
		log.Fatal(err)
	}
	r.Print(os.Stdout)

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for name, data := range map[string]string{"tangram.csv": r.TangramCSV, "gemini.csv": r.GeminiCSV} {
			path := *outDir + "/" + name
			if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}
