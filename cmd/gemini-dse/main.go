// Command gemini-dse runs the Gemini architecture/mapping co-exploration
// over a Table I candidate space (paper Sec. V-A, VI-A1) and reports the
// optimal architecture plus a result.csv-style table, like the artifact's
// dse.sh.
//
// The sweep runs inside a DSE session: a shared evaluation cache warms
// across candidates, -restarts widens the per-cell SA portfolio, -resume
// checkpoints completed (candidate, model) cells to a JSON file so an
// interrupted or repeated sweep picks up where it left off, and -stream
// prints each candidate as soon as it completes.
//
// Usage:
//
//	gemini-dse -tops 72 -reduced -models transformer -batch 64 \
//	    -restarts 4 -resume sweep.ckpt -out result.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"gemini/internal/dnn"
	"gemini/internal/dse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gemini-dse: ")

	tops := flag.Int("tops", 72, "target compute: 72, 128 or 512 TOPs")
	reduced := flag.Bool("reduced", false, "use the reduced candidate grid (fast)")
	models := flag.String("models", "transformer", "comma-separated workload list")
	batch := flag.Int("batch", 64, "batch size (64 = throughput scenario)")
	saIters := flag.Int("sa", 600, "SA iterations per candidate/model mapping")
	restarts := flag.Int("restarts", 1, "SA portfolio width per (candidate, model) cell")
	patience := flag.Int("patience", 0, "stop a cell's SA portfolio after N consecutive non-improving restarts (0 = always run all restarts)")
	racing := flag.Bool("racing", false, "allocate restarts by successive halving: every candidate gets one exploratory restart, then the budget doubles for the best half each rung until only finalists run the full portfolio (forces -patience off; the winner is identical to the uniform sweep's)")
	racingKeep := flag.Float64("racing-keep", 0, "fraction of candidates promoted per racing rung, inside (0, 1); 0 = the engine default of 1/2")
	order := flag.String("order", "bound", "candidate dispatch order: bound (ascending objective lower bound, tightens the pruning incumbent early) or grid (enumeration order)")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	alpha := flag.Float64("alpha", 1, "MC exponent of the objective")
	beta := flag.Float64("beta", 1, "energy exponent of the objective")
	gamma := flag.Float64("gamma", 1, "delay exponent of the objective")
	prune := flag.Bool("prune", false, "skip candidates whose objective lower bound exceeds the best seen (decisions are logged)")
	bound := flag.String("bound", "compulsory", "lower-bound formulation for pruning/ordering: compulsory (compute + DRAM + compulsory activation/interconnect traffic), cut (compulsory plus a per-cut bisection-bandwidth delay floor over the NoC/D2D link graph) or compute-dram (the legacy compute+weight bound)")
	abandonEvery := flag.Int("abandon-every", 0, "in-loop abandonment stride: dominated cells stop mid-anneal after this many SA iterations (0 = engine default of 32, negative = between-restart checks only)")
	cacheDir := flag.String("cache-dir", "", "evaluation-cache spill directory: warm group evaluations from a previous process and re-save as the sweep runs")
	retry := flag.Int("retry", 0, "retry a (candidate, model) cell up to N times after a transient failure (panic, timeout, transient I/O); 0 disables retry")
	retryBase := flag.Duration("retry-base-delay", 0, "first retry backoff (0 = engine default of 10ms); doubles per retry with jitter")
	retryMax := flag.Duration("retry-max-delay", 0, "retry backoff cap (0 = engine default of 1s)")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-cell mapping deadline; a cell exceeding it fails with a retryable timeout error instead of stalling the sweep (0 = no deadline)")
	resume := flag.String("resume", "", "checkpoint file: load completed cells from it if present, save on completion; a corrupt file is quarantined to <file>.corrupt and the sweep resumes cold")
	stream := flag.Bool("stream", false, "print each candidate result as it completes")
	out := flag.String("out", "", "write full result table CSV to this path")
	top := flag.Int("top", 10, "print the best N candidates")
	flag.Parse()

	var sp dse.Space
	switch *tops {
	case 72:
		sp = dse.Space72()
	case 128:
		sp = dse.Space128()
	case 512:
		sp = dse.Space512()
	default:
		log.Fatalf("unsupported -tops %d (want 72, 128 or 512)", *tops)
	}
	if *reduced {
		sp = sp.Reduced()
	}

	var graphs []*dnn.Graph
	for _, name := range strings.Split(*models, ",") {
		g, err := dnn.Model(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		graphs = append(graphs, g)
	}

	opt := dse.DefaultOptions()
	opt.Batch = *batch
	opt.SAIterations = *saIters
	opt.Restarts = *restarts
	opt.Patience = *patience
	opt.Racing = *racing
	opt.RacingKeep = *racingKeep
	if *racingKeep != 0 && (*racingKeep <= 0 || *racingKeep >= 1) {
		log.Fatalf("-racing-keep %v outside (0, 1)", *racingKeep)
	}
	opt.Workers = *workers
	opt.Objective = dse.Objective{Alpha: *alpha, Beta: *beta, Gamma: *gamma}
	opt.Prune = *prune
	opt.AbandonEvery = *abandonEvery
	opt.CacheDir = *cacheDir
	opt.Retry = dse.RetryPolicy{Max: *retry, BaseDelay: *retryBase, MaxDelay: *retryMax}
	opt.CellTimeout = *cellTimeout
	switch *bound {
	case "compulsory":
		opt.Bound = dse.BoundCompulsory
	case "cut":
		opt.Bound = dse.BoundCut
	case "compute-dram":
		opt.Bound = dse.BoundComputeDRAM
	default:
		log.Fatalf("unsupported -bound %q (want compulsory, cut or compute-dram)", *bound)
	}
	switch *order {
	case "bound":
		opt.Order = dse.OrderBound
	case "grid":
		opt.Order = dse.OrderGrid
	default:
		log.Fatalf("unsupported -order %q (want bound or grid)", *order)
	}

	ses := dse.NewSession()
	ses.Logf = log.Printf
	if *resume != "" {
		if f, err := os.Open(*resume); err == nil {
			err := ses.LoadCheckpoint(f)
			f.Close()
			if err != nil {
				// A corrupt checkpoint must not kill the sweep: quarantine it
				// (keeping the bytes for diagnosis), resume cold, and let the
				// completion save write a fresh file.
				quarantine := *resume + ".corrupt"
				if rerr := os.Rename(*resume, quarantine); rerr != nil {
					log.Printf("corrupt checkpoint %s could not be quarantined (%v); resuming cold: %v", *resume, rerr, err)
				} else {
					log.Printf("corrupt checkpoint quarantined to %s; resuming cold: %v", quarantine, err)
				}
			} else {
				fmt.Printf("resumed %d checkpointed cells from %s\n", ses.CheckpointCells(), *resume)
			}
		} else if !os.IsNotExist(err) {
			log.Fatal(err)
		}
	}

	cands := sp.Enumerate()
	total := len(cands)
	fmt.Printf("space %s: %d candidates, %d workload(s), batch %d, restarts %d (patience %d), order %s\n",
		sp.Name, total, len(graphs), *batch, *restarts, *patience, opt.Order)
	done := 0
	if *stream {
		opt.OnResult = func(r dse.CandidateResult) {
			done++
			switch r.Status() {
			case "ok":
				fmt.Printf("[%d/%d] %-48s obj=%.4g E=%.3g D=%.3g\n",
					done, total, r.Cfg.Name, r.Obj, r.Energy, r.Delay)
			case "error":
				fmt.Printf("[%d/%d] %-48s ERROR: %v\n", done, total, r.Cfg.Name, r.Err)
			default:
				fmt.Printf("[%d/%d] %-48s %s\n", done, total, r.Cfg.Name, r.Status())
			}
		}
	}

	start := time.Now()
	results := ses.Run(cands, graphs, opt)
	fmt.Printf("explored in %v\n", time.Since(start).Round(time.Second))
	st := ses.CacheStats()
	fmt.Printf("shared cache: %d hits / %d misses (%.1f%% hit rate), %d entries; %d cells resumed\n",
		st.Hits, st.Misses, 100*st.HitRate(), st.Entries, ses.ResumedCells())
	if *cacheDir != "" {
		fmt.Printf("disk cache (%s): %d entries warmed from disk, %d hits served by them, %d background saves\n",
			dse.CachePath(*cacheDir), st.DiskLoaded, st.DiskHits, st.DiskSaves)
	}
	ss := ses.LastSweepStats()
	fmt.Printf("scheduler: order=%s (bound=%s), %d/%d candidates pruned, %d cells resumed, %d restarts abandoned by the incumbent, %d skipped by patience, %d SA iterations\n",
		ss.Order, *bound, ss.PrunedCandidates, ss.Candidates, ss.ResumedCells, ss.AbandonedRestarts, ss.SkippedRestarts, ss.SAIterations)
	if ss.Retries+ss.Panics+ss.DeadlineExceeded+ss.PersistenceErrors > 0 {
		fmt.Printf("faults: %d retries, %d recovered panics, %d deadline expiries, %d persistence errors (degraded=%t)\n",
			ss.Retries, ss.Panics, ss.DeadlineExceeded, ss.PersistenceErrors, ss.PersistenceDegraded)
		if ss.LastPersistenceError != "" {
			fmt.Printf("  last persistence error: %s\n", ss.LastPersistenceError)
		}
	}
	if ss.Racing {
		fmt.Print("racing rungs (budget: candidates -> survivors):")
		for _, r := range ss.Rungs {
			fmt.Printf("  %d: %d -> %d", r.Budget, r.Candidates, r.Survivors)
		}
		fmt.Println()
	}
	if len(ss.Trajectory) > 0 {
		fmt.Print("incumbent trajectory:")
		for _, step := range ss.Trajectory {
			fmt.Printf("  %.4g (%s)", step.Obj, step.Candidate)
		}
		fmt.Println()
	}
	fmt.Println()

	if *resume != "" {
		f, err := os.Create(*resume)
		if err != nil {
			log.Fatal(err)
		}
		if err := ses.SaveCheckpoint(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checkpointed %d cells to %s\n\n", ses.CheckpointCells(), *resume)
	}

	// Infrastructure errors are never folded into infeasibility: report
	// every errored candidate, then fail if nothing mapped.
	if errs := dse.Errors(results); len(errs) > 0 {
		for _, e := range errs {
			log.Printf("sweep error: %v", e)
		}
	}

	best := dse.Best(results)
	if best == nil {
		log.Fatal("no feasible candidate")
	}
	fmt.Printf("optimal architecture (MC^%.1f E^%.1f D^%.1f): %s\n",
		*alpha, *beta, *gamma, best.Cfg.Name)
	fmt.Printf("  MC=$%.2f  E=%.4g J  D=%.4g s  EDP=%.4g\n\n", best.MC.Total(), best.Energy, best.Delay, best.EDP())

	fmt.Printf("top %d candidates:\n", *top)
	for i := 0; i < len(results) && i < *top; i++ {
		r := &results[i]
		if !r.Feasible {
			break
		}
		fmt.Printf("%2d. %-48s obj=%.4g MC=$%.2f E=%.3g D=%.3g\n",
			i+1, r.Cfg.Name, r.Obj, r.MC.Total(), r.Energy, r.Delay)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := dse.WriteCSV(f, results); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s (%d rows)\n", *out, len(results))
	}
}
