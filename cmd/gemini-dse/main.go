// Command gemini-dse runs the Gemini architecture/mapping co-exploration
// over a Table I candidate space (paper Sec. V-A, VI-A1) and reports the
// optimal architecture plus a result.csv-style table, like the artifact's
// dse.sh.
//
// Usage:
//
//	gemini-dse -tops 72 -reduced -models transformer -batch 64 -out result.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"gemini/internal/dnn"
	"gemini/internal/dse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gemini-dse: ")

	tops := flag.Int("tops", 72, "target compute: 72, 128 or 512 TOPs")
	reduced := flag.Bool("reduced", false, "use the reduced candidate grid (fast)")
	models := flag.String("models", "transformer", "comma-separated workload list")
	batch := flag.Int("batch", 64, "batch size (64 = throughput scenario)")
	saIters := flag.Int("sa", 600, "SA iterations per candidate/model mapping")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	alpha := flag.Float64("alpha", 1, "MC exponent of the objective")
	beta := flag.Float64("beta", 1, "energy exponent of the objective")
	gamma := flag.Float64("gamma", 1, "delay exponent of the objective")
	out := flag.String("out", "", "write full result table CSV to this path")
	top := flag.Int("top", 10, "print the best N candidates")
	flag.Parse()

	var sp dse.Space
	switch *tops {
	case 72:
		sp = dse.Space72()
	case 128:
		sp = dse.Space128()
	case 512:
		sp = dse.Space512()
	default:
		log.Fatalf("unsupported -tops %d (want 72, 128 or 512)", *tops)
	}
	if *reduced {
		sp = sp.Reduced()
	}

	var graphs []*dnn.Graph
	for _, name := range strings.Split(*models, ",") {
		g, err := dnn.Model(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		graphs = append(graphs, g)
	}

	opt := dse.DefaultOptions()
	opt.Batch = *batch
	opt.SAIterations = *saIters
	opt.Workers = *workers
	opt.Objective = dse.Objective{Alpha: *alpha, Beta: *beta, Gamma: *gamma}

	cands := sp.Enumerate()
	fmt.Printf("space %s: %d candidates, %d workload(s), batch %d\n", sp.Name, len(cands), len(graphs), *batch)
	start := time.Now()
	results := dse.Run(cands, graphs, opt)
	fmt.Printf("explored in %v\n\n", time.Since(start).Round(time.Second))

	best := dse.Best(results)
	if best == nil {
		log.Fatal("no feasible candidate")
	}
	fmt.Printf("optimal architecture (MC^%.1f E^%.1f D^%.1f): %s\n",
		*alpha, *beta, *gamma, best.Cfg.Name)
	fmt.Printf("  MC=$%.2f  E=%.4g J  D=%.4g s  EDP=%.4g\n\n", best.MC.Total(), best.Energy, best.Delay, best.EDP())

	fmt.Printf("top %d candidates:\n", *top)
	for i := 0; i < len(results) && i < *top; i++ {
		r := &results[i]
		if !r.Feasible {
			break
		}
		fmt.Printf("%2d. %-48s obj=%.4g MC=$%.2f E=%.3g D=%.3g\n",
			i+1, r.Cfg.Name, r.Obj, r.MC.Total(), r.Energy, r.Delay)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := dse.WriteCSV(f, results); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s (%d rows)\n", *out, len(results))
	}
}
