// Command bench-compare gates benchmark reports against a committed
// baseline: benchmarks present in both files must not regress ns/op or
// allocs/op by more than -max-regress percent, and (unless disabled) the
// warm-cache DSE session sweep must stay -warm-factor times faster than the
// cold sweep. Report files are either a flat {"BenchmarkX": {...}} map (the
// scripts/bench*_json.sh output) or a BENCH_N.json envelope with a
// "benchmarks" object whose entries may nest the numbers under "optimized".
//
// Usage:
//
//	bench-compare -old BENCH_1.json -new bench2.json [-max-regress 10] [-warm-factor 2]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"sort"
)

// metrics is one benchmark's measured numbers. The work-saved counters are
// only present on the benchmarks that report them; zero means absent.
type metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// SAIterations / UniformSAIterations are the racing sweep's annealing
	// spend and its uniform twin's (BenchmarkDSESweepRacing).
	SAIterations        float64 `json:"sa_iterations"`
	UniformSAIterations float64 `json:"uniform_sa_iterations"`
	// PrunedCandidates / CompulsoryPruned are the cut-bound sweep's prune
	// count and its compulsory-bound twin's (BenchmarkDSESweepCutBound).
	PrunedCandidates float64 `json:"pruned_candidates"`
	CompulsoryPruned float64 `json:"compulsory_pruned_candidates"`
	// OneWorkerNs / TwoWorkerNs are the fleet sweep's drain times for the
	// independent-shards twin and the 2-worker incumbent-sharing fleet;
	// SoloSAIterations is the independent twin's total annealing spend
	// (BenchmarkFleetSweep, which reuses sa_iterations for the fleet's own
	// spend).
	OneWorkerNs      float64 `json:"one_worker_ns"`
	TwoWorkerNs      float64 `json:"two_worker_ns"`
	SoloSAIterations float64 `json:"solo_sa_iterations"`
}

// entry tolerates both the flat shape and the BENCH_N baseline/optimized
// envelope (optimized wins when present: it is the committed state of the
// tree).
type entry struct {
	metrics
	Optimized *metrics `json:"optimized"`
}

func (e entry) resolve() metrics {
	if e.Optimized != nil {
		return *e.Optimized
	}
	return e.metrics
}

// file tolerates both top-level shapes.
type file struct {
	Benchmarks map[string]entry `json:"benchmarks"`
}

func load(path string) (map[string]metrics, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f file
	if err := json.Unmarshal(raw, &f); err == nil && len(f.Benchmarks) > 0 {
		return resolveAll(f.Benchmarks), nil
	}
	var flat map[string]entry
	if err := json.Unmarshal(raw, &flat); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	// A flat report mixes benchmark entries with metadata strings; the
	// strict decode above already rejected those, so filter by ns > 0.
	return resolveAll(flat), nil
}

func resolveAll(in map[string]entry) map[string]metrics {
	out := make(map[string]metrics, len(in))
	for k, v := range in {
		if m := v.resolve(); m.NsPerOp > 0 {
			out[k] = m
		}
	}
	return out
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench-compare: ")
	oldPath := flag.String("old", "BENCH_1.json", "baseline report")
	newPath := flag.String("new", "", "fresh report to gate")
	maxRegress := flag.Float64("max-regress", 10, "max allowed regression in percent (ns/op and allocs/op)")
	nsGate := flag.Bool("ns-gate", true, "fail on ns/op regressions; disable when old and new reports come from different machines (allocs/op stays gated — it is machine-independent)")
	warmFactor := flag.Float64("warm-factor", 2, "required cold/warm speedup of the DSE session sweep in the new report (0 disables); cold and warm come from the same run, so this check is machine-relative")
	orderedFactor := flag.Float64("ordered-factor", 0, "required grid/ordered speedup of the pruning-enabled scheduler sweep in the new report (0 disables); both come from the same run, so this check is machine-relative")
	tightBoundFactor := flag.Float64("tightbound-factor", 0, "required PR3-bound/tight-bound speedup of the weak-first sweep in the new report (0 disables); both come from the same run, so this check is machine-relative")
	diskWarmFactor := flag.Float64("diskwarm-factor", 0, "max allowed disk-warm/in-process-warm slowdown of the session sweep in the new report (0 disables); both come from the same run, so this check is machine-relative")
	hardenedFactor := flag.Float64("hardened-factor", 0, "max allowed hardened/tight-bound slowdown of the weak-first sweep in the new report (0 disables); both come from the same run, so this check is machine-relative")
	racingFactor := flag.Float64("racing-factor", 0, "required uniform/racing SA-iteration ratio of the racing sweep in the new report (0 disables); both counts come from the same run and are deterministic")
	cutBoundFactor := flag.Float64("cutbound-factor", 0, "required cut/compulsory pruned-candidate ratio of the cut-bound sweep in the new report (0 disables); the cut bound must also prune strictly more in absolute count")
	fleetFactor := flag.Float64("fleet-factor", 0, "required independent/fleet wall-clock ratio of the fleet sweep in the new report (0 disables): the 2-worker incumbent-sharing fleet must drain the grid this much faster than one no-sharing worker, and spend strictly fewer total SA iterations; both twins come from the same run, so this check is machine-relative")
	only := flag.String("only", "", "regex restricting the per-benchmark regression checks (empty = all overlapping benchmarks); use for tight -max-regress gates that must skip benchmarks whose allocs depend on scheduling races")
	flag.Parse()
	if *newPath == "" {
		log.Fatal("-new is required")
	}

	oldB, err := load(*oldPath)
	if err != nil {
		log.Fatal(err)
	}
	newB, err := load(*newPath)
	if err != nil {
		log.Fatal(err)
	}

	var keep *regexp.Regexp
	if *only != "" {
		if keep, err = regexp.Compile(*only); err != nil {
			log.Fatalf("-only: %v", err)
		}
	}
	var names []string
	for name := range oldB {
		if _, ok := newB[name]; !ok {
			continue
		}
		if keep != nil && !keep.MatchString(name) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		log.Fatalf("no overlapping benchmarks between %s and %s (filter %q)", *oldPath, *newPath, *only)
	}

	failed := false
	check := func(name, metric string, oldV, newV float64, gate bool) {
		switch {
		case oldV == 0 && newV == 0:
			return
		case oldV == 0:
			fmt.Printf("FAIL %s %s: %v -> %v (baseline was zero)\n", name, metric, oldV, newV)
			failed = true
			return
		}
		pct := 100 * (newV - oldV) / oldV
		status := "ok  "
		if pct > *maxRegress {
			if gate {
				status = "FAIL"
				failed = true
			} else {
				status = "warn"
			}
		}
		fmt.Printf("%s %s %s: %.6g -> %.6g (%+.1f%%, limit +%.0f%%)\n",
			status, name, metric, oldV, newV, pct, *maxRegress)
	}
	for _, name := range names {
		check(name, "ns/op", oldB[name].NsPerOp, newB[name].NsPerOp, *nsGate)
		check(name, "allocs/op", oldB[name].AllocsPerOp, newB[name].AllocsPerOp, true)
	}

	if *warmFactor > 0 {
		cold, okC := newB["BenchmarkDSESessionSweepCold"]
		warm, okW := newB["BenchmarkDSESessionSweepWarm"]
		switch {
		case !okC || !okW:
			fmt.Printf("FAIL warm-cache check: cold/warm sweep benchmarks missing from %s\n", *newPath)
			failed = true
		case cold.NsPerOp < *warmFactor*warm.NsPerOp:
			fmt.Printf("FAIL warm-cache sweep speedup %.2fx < required %.2fx (cold %.6g ns, warm %.6g ns)\n",
				cold.NsPerOp/warm.NsPerOp, *warmFactor, cold.NsPerOp, warm.NsPerOp)
			failed = true
		default:
			fmt.Printf("ok   warm-cache sweep speedup %.2fx (>= %.2fx)\n", cold.NsPerOp/warm.NsPerOp, *warmFactor)
		}
	}

	if *orderedFactor > 0 {
		grid, okG := newB["BenchmarkDSESweepGridFixed"]
		ordered, okO := newB["BenchmarkDSESweepOrdered"]
		switch {
		case !okG || !okO:
			fmt.Printf("FAIL ordered-sweep check: grid/ordered scheduler benchmarks missing from %s\n", *newPath)
			failed = true
		case grid.NsPerOp < *orderedFactor*ordered.NsPerOp:
			fmt.Printf("FAIL bound-ordered sweep speedup %.2fx < required %.2fx (grid %.6g ns, ordered %.6g ns)\n",
				grid.NsPerOp/ordered.NsPerOp, *orderedFactor, grid.NsPerOp, ordered.NsPerOp)
			failed = true
		default:
			fmt.Printf("ok   bound-ordered sweep speedup %.2fx (>= %.2fx)\n", grid.NsPerOp/ordered.NsPerOp, *orderedFactor)
		}
	}

	if *tightBoundFactor > 0 {
		pr3, okP := newB["BenchmarkDSESweepPR3Bound"]
		tight, okT := newB["BenchmarkDSESweepTightBound"]
		switch {
		case !okP || !okT:
			fmt.Printf("FAIL tight-bound check: PR3/tight bound benchmarks missing from %s\n", *newPath)
			failed = true
		case pr3.NsPerOp < *tightBoundFactor*tight.NsPerOp:
			fmt.Printf("FAIL tight-bound sweep speedup %.2fx < required %.2fx (PR3 bound %.6g ns, tight %.6g ns)\n",
				pr3.NsPerOp/tight.NsPerOp, *tightBoundFactor, pr3.NsPerOp, tight.NsPerOp)
			failed = true
		default:
			fmt.Printf("ok   tight-bound sweep speedup %.2fx (>= %.2fx)\n", pr3.NsPerOp/tight.NsPerOp, *tightBoundFactor)
		}
	}

	if *diskWarmFactor > 0 {
		warm, okW := newB["BenchmarkDSESessionSweepWarm"]
		disk, okD := newB["BenchmarkDSESweepDiskWarm"]
		switch {
		case !okW || !okD:
			fmt.Printf("FAIL disk-warm check: warm/disk-warm sweep benchmarks missing from %s\n", *newPath)
			failed = true
		case disk.NsPerOp > *diskWarmFactor*warm.NsPerOp:
			fmt.Printf("FAIL disk-warm sweep %.2fx slower than in-process warm, limit %.2fx (disk %.6g ns, warm %.6g ns)\n",
				disk.NsPerOp/warm.NsPerOp, *diskWarmFactor, disk.NsPerOp, warm.NsPerOp)
			failed = true
		default:
			fmt.Printf("ok   disk-warm sweep within %.2fx of in-process warm (limit %.2fx)\n", disk.NsPerOp/warm.NsPerOp, *diskWarmFactor)
		}
	}

	if *hardenedFactor > 0 {
		tight, okT := newB["BenchmarkDSESweepTightBound"]
		hard, okH := newB["BenchmarkDSESweepHardened"]
		switch {
		case !okT || !okH:
			fmt.Printf("FAIL hardened check: tight-bound/hardened sweep benchmarks missing from %s\n", *newPath)
			failed = true
		case hard.NsPerOp > *hardenedFactor*tight.NsPerOp:
			fmt.Printf("FAIL hardened sweep %.2fx slower than its fault-free twin, limit %.2fx (hardened %.6g ns, tight %.6g ns)\n",
				hard.NsPerOp/tight.NsPerOp, *hardenedFactor, hard.NsPerOp, tight.NsPerOp)
			failed = true
		default:
			fmt.Printf("ok   hardened sweep within %.2fx of its fault-free twin (limit %.2fx)\n", hard.NsPerOp/tight.NsPerOp, *hardenedFactor)
		}
	}

	if *racingFactor > 0 {
		race, ok := newB["BenchmarkDSESweepRacing"]
		switch {
		case !ok || race.SAIterations == 0 || race.UniformSAIterations == 0:
			fmt.Printf("FAIL racing check: BenchmarkDSESweepRacing iteration counters missing from %s\n", *newPath)
			failed = true
		case race.UniformSAIterations < *racingFactor*race.SAIterations:
			fmt.Printf("FAIL racing sweep saved %.2fx SA iterations < required %.2fx (racing %g, uniform %g)\n",
				race.UniformSAIterations/race.SAIterations, *racingFactor, race.SAIterations, race.UniformSAIterations)
			failed = true
		default:
			fmt.Printf("ok   racing sweep spends %.2fx fewer SA iterations than uniform (>= %.2fx)\n",
				race.UniformSAIterations/race.SAIterations, *racingFactor)
		}
	}

	if *cutBoundFactor > 0 {
		cut, ok := newB["BenchmarkDSESweepCutBound"]
		switch {
		case !ok || cut.PrunedCandidates == 0:
			fmt.Printf("FAIL cut-bound check: BenchmarkDSESweepCutBound prune counters missing from %s\n", *newPath)
			failed = true
		case cut.PrunedCandidates <= cut.CompulsoryPruned ||
			cut.PrunedCandidates < *cutBoundFactor*cut.CompulsoryPruned:
			fmt.Printf("FAIL cut bound pruned %g candidates vs compulsory %g (want strictly more and >= %.2fx)\n",
				cut.PrunedCandidates, cut.CompulsoryPruned, *cutBoundFactor)
			failed = true
		default:
			fmt.Printf("ok   cut bound pruned %g candidates vs compulsory %g (strictly more, >= %.2fx)\n",
				cut.PrunedCandidates, cut.CompulsoryPruned, *cutBoundFactor)
		}
	}

	if *fleetFactor > 0 {
		fl, ok := newB["BenchmarkFleetSweep"]
		switch {
		case !ok || fl.OneWorkerNs == 0 || fl.TwoWorkerNs == 0 ||
			fl.SAIterations == 0 || fl.SoloSAIterations == 0:
			fmt.Printf("FAIL fleet check: BenchmarkFleetSweep twin counters missing from %s\n", *newPath)
			failed = true
		case fl.OneWorkerNs < *fleetFactor*fl.TwoWorkerNs:
			fmt.Printf("FAIL fleet sweep drained %.2fx faster than independent shards < required %.2fx (fleet %.6g ns, independent %.6g ns)\n",
				fl.OneWorkerNs/fl.TwoWorkerNs, *fleetFactor, fl.TwoWorkerNs, fl.OneWorkerNs)
			failed = true
		case fl.SAIterations >= fl.SoloSAIterations:
			fmt.Printf("FAIL fleet sweep spent %g SA iterations vs independent shards' %g (want strictly fewer)\n",
				fl.SAIterations, fl.SoloSAIterations)
			failed = true
		default:
			fmt.Printf("ok   fleet sweep drains %.2fx faster than independent shards (>= %.2fx) at %g vs %g SA iterations\n",
				fl.OneWorkerNs/fl.TwoWorkerNs, *fleetFactor, fl.SAIterations, fl.SoloSAIterations)
		}
	}

	if failed {
		os.Exit(1)
	}
	fmt.Println("all benchmark gates passed")
}
