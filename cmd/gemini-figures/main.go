// Command gemini-figures reproduces the Fig. 6 design-space scatter and the
// Fig. 7 objective-optima analysis (Sec. VII-A).
//
// The full Table I grids take hours on a laptop (the paper used an
// 80-thread server); -reduced sweeps a representative sub-grid instead.
package main

import (
	"flag"
	"log"
	"os"

	"gemini/internal/dse"
	"gemini/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gemini-figures: ")

	quick := flag.Bool("quick", false, "tiny workloads and tiny grid")
	reduced := flag.Bool("reduced", false, "full workloads on the reduced grid")
	sa := flag.Int("sa", 0, "override SA iterations")
	fig := flag.String("fig", "both", "6, 7, granularity, or both")
	flag.Parse()

	opt := experiments.FullOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	if *sa > 0 {
		opt.SAIterations = *sa
	}
	// One session across every figure: Fig. 6 and Fig. 7 sweep the same
	// candidate space, so the second sweep runs on a warm shared cache.
	opt.Session = dse.NewSession()
	defer func() {
		st := opt.Session.CacheStats()
		log.Printf("shared cache: %d hits / %d misses (%.1f%% hit rate)",
			st.Hits, st.Misses, 100*st.HitRate())
	}()

	if *fig == "6" || *fig == "both" {
		var spaces []dse.Space
		if *reduced && !*quick {
			spaces = []dse.Space{dse.Space128().Reduced(), dse.Space512().Reduced()}
		}
		r, err := experiments.Fig6(opt, spaces...)
		if err != nil {
			log.Fatal(err)
		}
		r.Print(os.Stdout)
	}
	if *fig == "granularity" || *fig == "both" {
		cg, err := experiments.ChipletGranularity(opt)
		if err != nil {
			log.Fatal(err)
		}
		cg.Print(os.Stdout)
		cc, err := experiments.CoreGranularity(opt)
		if err != nil {
			log.Fatal(err)
		}
		cc.Print(os.Stdout)
	}
	if *fig == "7" || *fig == "both" {
		var spaces []dse.Space
		if *reduced && !*quick {
			spaces = []dse.Space{dse.Space128().Reduced()}
		}
		r, err := experiments.Fig7(opt, spaces...)
		if err != nil {
			log.Fatal(err)
		}
		r.Print(os.Stdout)
	}
}
