// Command linkcheck validates the repo's Markdown cross-references offline:
// every relative link in the given files (or directories, walked for *.md)
// must point at an existing file or directory, and every fragment —
// `other.md#section` or an in-file `#section` — must match a heading's
// GitHub-style anchor in the target document. External http(s) and mailto
// links are deliberately not fetched; CI must not flake on the network.
//
// Usage:
//
//	linkcheck README.md docs
//
// Exit status is 1 when any link is broken, with one file:line: message per
// finding.
package main

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck file.md|dir [...]")
		os.Exit(2)
	}
	var files []string
	for _, arg := range os.Args[1:] {
		fi, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		if !fi.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
	}

	broken := 0
	for _, file := range files {
		findings, err := checkFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

// linkPattern matches inline Markdown links [text](target); images share
// the shape with a leading bang.
var linkPattern = regexp.MustCompile(`\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkFile validates every relative link of one Markdown file.
func checkFile(file string) ([]string, error) {
	lines, err := readLines(file)
	if err != nil {
		return nil, err
	}
	var findings []string
	dir := filepath.Dir(file)
	fenced := false
	for i, line := range lines {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			fenced = !fenced
			continue
		}
		if fenced {
			continue
		}
		for _, m := range linkPattern.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if msg := checkTarget(file, dir, target); msg != "" {
				findings = append(findings, fmt.Sprintf("%s:%d: %s", file, i+1, msg))
			}
		}
	}
	return findings, nil
}

// checkTarget validates one link target; "" means the link is fine.
func checkTarget(file, dir, target string) string {
	switch {
	case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"):
		return "" // external: not checked offline
	case strings.HasPrefix(target, "#"):
		ok, err := hasAnchor(file, target[1:])
		if err != nil {
			return err.Error()
		}
		if !ok {
			return fmt.Sprintf("broken anchor %q (no matching heading)", target)
		}
		return ""
	}
	path, frag, _ := strings.Cut(target, "#")
	resolved := filepath.Join(dir, filepath.FromSlash(path))
	fi, err := os.Stat(resolved)
	if err != nil {
		return fmt.Sprintf("broken link %q (%s does not exist)", target, resolved)
	}
	if frag != "" {
		if fi.IsDir() || !strings.HasSuffix(resolved, ".md") {
			return fmt.Sprintf("fragment on non-Markdown target %q", target)
		}
		ok, err := hasAnchor(resolved, frag)
		if err != nil {
			return err.Error()
		}
		if !ok {
			return fmt.Sprintf("broken anchor %q (no matching heading in %s)", target, resolved)
		}
	}
	return ""
}

// hasAnchor reports whether a Markdown file contains a heading whose
// GitHub-style anchor equals frag.
func hasAnchor(file, frag string) (bool, error) {
	lines, err := readLines(file)
	if err != nil {
		return false, err
	}
	fenced := false
	for _, line := range lines {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			fenced = !fenced
			continue
		}
		if fenced || !strings.HasPrefix(line, "#") {
			continue
		}
		heading := strings.TrimLeft(line, "#")
		if anchorFor(heading) == strings.ToLower(frag) {
			return true, nil
		}
	}
	return false, nil
}

// anchorFor approximates GitHub's heading-to-anchor slug: lowercase, code
// ticks stripped, punctuation dropped, spaces to hyphens.
func anchorFor(heading string) string {
	h := strings.ToLower(strings.TrimSpace(heading))
	h = strings.ReplaceAll(h, "`", "")
	var b strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteRune('-')
		}
	}
	return b.String()
}

func readLines(file string) ([]string, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	return lines, sc.Err()
}
