// Command gemini-serve runs the DSE sweep service: a long-lived HTTP server
// over a bounded pool of dse.Sessions. Clients POST JSON sweep specs to
// /sweep and read per-candidate results back as an NDJSON stream; sweeps
// are checkpointed per id under -data, so re-POSTing a spec after a client
// or server restart resumes instead of recomputing.
//
// Usage:
//
//	gemini-serve -addr :8080 -data /var/lib/gemini -sessions 2 -max-sweeps 4
//
// Endpoints and the NDJSON schema are documented in docs/http-api.md; try:
//
//	curl -N -X POST localhost:8080/sweep -d '{
//	  "space": {"tops": 72, "reduced": true},
//	  "models": ["tinycnn"], "sa_iterations": 100, "prune": true
//	}'
//
// SIGINT/SIGTERM shut the server down cleanly: running sweeps are canceled
// (their checkpoints survive, each stream ends with a typed error event)
// and in-flight responses drain before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gemini/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gemini-serve: ")

	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "checkpoint directory (empty = no persistence)")
	cacheDir := flag.String("cache-dir", "", "evaluation-cache spill directory: sweeps warm from the previous process's group evaluations and re-save as they run (empty = in-process cache only)")
	sessions := flag.Int("sessions", 1, "DSE session pool size")
	maxSweeps := flag.Int("max-sweeps", 4, "max concurrently running sweeps (excess POSTs get 429)")
	maxCells := flag.Int("max-cells", 0, "per-sweep (candidate, model) cell cap (0 = default)")
	quiet := flag.Bool("quiet", false, "suppress per-sweep scheduling logs")
	flag.Parse()

	cfg := serve.Config{
		Sessions:            *sessions,
		MaxConcurrentSweeps: *maxSweeps,
		MaxCells:            *maxCells,
		DataDir:             *data,
		CacheDir:            *cacheDir,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	srv := serve.New(cfg)

	hs := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("listening on %s (sessions=%d, max-sweeps=%d, data=%q, cache-dir=%q)", *addr, *sessions, *maxSweeps, *data, *cacheDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case got := <-sig:
		log.Printf("received %v, shutting down", got)
	}

	// Cancel running sweeps first so their handlers finish their streams,
	// then drain connections.
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
	log.Printf("shutdown complete")
}
