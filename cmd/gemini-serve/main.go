// Command gemini-serve runs the DSE sweep service: a long-lived HTTP server
// over a bounded pool of dse.Sessions. Clients POST JSON sweep specs to
// /sweep and read per-candidate results back as an NDJSON stream; sweeps
// are checkpointed per id under -data, so re-POSTing a spec after a client
// or server restart resumes instead of recomputing.
//
// Sweeps admit through a multi-tenant queue: interactive sweeps dispatch
// ahead of batch ones (preempting them onto checkpoints when the slot pool
// is full), tenants share slots by deficit round-robin weight (-tenants),
// and per-tenant (-queue-depth, 429) and server-wide (-max-queued, 503)
// quotas bound the backlog.
//
// Usage:
//
//	gemini-serve -addr :8080 -data /var/lib/gemini -sessions 2 -max-sweeps 4 \
//	    -slots 8 -tenants ci=1,dev=3 -batch-share 0.5 -queue-depth 8
//
// Endpoints and the NDJSON schema are documented in docs/http-api.md; try:
//
//	curl -N -X POST localhost:8080/sweep -d '{
//	  "space": {"tops": 72, "reduced": true},
//	  "models": ["tinycnn"], "sa_iterations": 100, "prune": true
//	}'
//
// SIGINT/SIGTERM shut the server down cleanly: running sweeps are canceled
// (their checkpoints survive, each stream ends with a typed error event)
// and in-flight responses drain before the process exits.
//
// The same binary is also the fleet worker: `gemini-serve -worker URL`
// skips the server entirely and runs the distributed-sweep worker loop
// against a coordinator at URL (another gemini-serve, whose coordinator
// lives under /fleet/). Fleet sweeps are submitted with
// POST /fleet/sweeps {"spec": {...}, "shards": N}; the coordinator shards
// the candidate grid across workers, fans the best incumbent back out so
// every shard prunes against it, and merges worker checkpoints under -data
// exactly like a local sweep's. -lease-ttl tunes how fast a dead worker's
// shard is re-leased.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gemini/internal/fleet"
	"gemini/internal/serve"
)

// parseTenantWeights parses the -tenants flag value "name=weight,name=weight"
// into the fair-share weight table. Empty input means every tenant weighs 1.
func parseTenantWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	weights := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad tenant entry %q (want name=weight)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad tenant weight %q for %q (want integer >= 1)", val, name)
		}
		weights[name] = w
	}
	return weights, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("gemini-serve: ")

	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "checkpoint directory (empty = no persistence)")
	cacheDir := flag.String("cache-dir", "", "evaluation-cache spill directory: sweeps warm from the previous process's group evaluations and re-save as they run (empty = in-process cache only)")
	sessions := flag.Int("sessions", 1, "DSE session pool size")
	maxSweeps := flag.Int("max-sweeps", 4, "max concurrently running sweeps (excess admitted sweeps wait in the queue)")
	maxCells := flag.Int("max-cells", 0, "per-sweep (candidate, model) cell cap (0 = default)")
	slots := flag.Int("slots", 0, "worker-slot pool shared by running sweeps (0 = GOMAXPROCS)")
	tenants := flag.String("tenants", "", "fair-share tenant weights as name=weight,... (unlisted tenants weigh 1)")
	batchShare := flag.Float64("batch-share", 0, "max fraction of the slot pool batch sweeps may hold while interactive work is present (0 = default 0.5)")
	queueDepth := flag.Int("queue-depth", 0, "per-tenant waiting-sweep quota before 429 (0 = default 8)")
	maxQueued := flag.Int("max-queued", 0, "server-wide waiting-sweep cap before 503 (0 = default 64)")
	quiet := flag.Bool("quiet", false, "suppress per-sweep scheduling logs")
	leaseTTL := flag.Duration("lease-ttl", 0, "fleet shard lease time-to-live before a dead worker's shard is re-leased (0 = default 10s)")
	workerURL := flag.String("worker", "", "run as a fleet worker against the gemini-serve base URL (e.g. http://host:8080); no server is started")
	workerName := flag.String("worker-name", "", "fleet worker name in leases and logs (default worker-<pid>)")
	workerPoll := flag.Duration("worker-poll", 0, "fleet worker idle re-poll interval (0 = default 500ms)")
	flag.Parse()

	if *workerURL != "" {
		runWorker(*workerURL, *workerName, *workerPoll, *quiet)
		return
	}

	weights, err := parseTenantWeights(*tenants)
	if err != nil {
		log.Fatalf("-tenants: %v", err)
	}

	cfg := serve.Config{
		Sessions:            *sessions,
		MaxConcurrentSweeps: *maxSweeps,
		MaxCells:            *maxCells,
		DataDir:             *data,
		CacheDir:            *cacheDir,
		WorkerSlots:         *slots,
		TenantWeights:       weights,
		BatchShare:          *batchShare,
		QueueDepth:          *queueDepth,
		MaxQueuedSweeps:     *maxQueued,
		FleetLeaseTTL:       *leaseTTL,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	srv := serve.New(cfg)

	hs := &http.Server{Addr: *addr, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("listening on %s (sessions=%d, max-sweeps=%d, slots=%d, tenants=%q, data=%q, cache-dir=%q)",
		*addr, *sessions, *maxSweeps, *slots, *tenants, *data, *cacheDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case got := <-sig:
		log.Printf("received %v, shutting down", got)
	}

	// Cancel running sweeps first so their handlers finish their streams,
	// then drain connections.
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
	log.Printf("shutdown complete")
}

// runWorker runs the fleet worker loop against a gemini-serve base URL
// until SIGINT/SIGTERM. The coordinator is mounted under /fleet/ on the
// server, so the flag takes the plain server address.
func runWorker(url, name string, poll time.Duration, quiet bool) {
	if name == "" {
		name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	log.SetPrefix("gemini-serve[" + name + "]: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := fleet.WorkerConfig{
		Coordinator: strings.TrimSuffix(url, "/") + "/fleet",
		Name:        name,
		Poll:        poll,
	}
	if !quiet {
		cfg.Logf = log.Printf
	}
	log.Printf("fleet worker %s polling %s", cfg.Name, cfg.Coordinator)
	if err := fleet.RunWorker(ctx, cfg); err != nil && !errors.Is(err, context.Canceled) {
		log.Fatalf("worker: %v", err)
	}
	log.Printf("worker shutdown complete")
}
