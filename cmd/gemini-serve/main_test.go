package main

import (
	"reflect"
	"testing"
)

func TestParseTenantWeights(t *testing.T) {
	cases := []struct {
		in      string
		want    map[string]int
		wantErr bool
	}{
		{in: "", want: nil},
		{in: "ci=1", want: map[string]int{"ci": 1}},
		{in: "ci=1,dev=3, batch=2", want: map[string]int{"ci": 1, "dev": 3, "batch": 2}},
		{in: "ci", wantErr: true},
		{in: "=2", wantErr: true},
		{in: "ci=0", wantErr: true},
		{in: "ci=-1", wantErr: true},
		{in: "ci=two", wantErr: true},
	}
	for _, tc := range cases {
		got, err := parseTenantWeights(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseTenantWeights(%q) accepted, want error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseTenantWeights(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseTenantWeights(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
