// Command lint-exported is a deprecation shim: the exported-doc contract it
// used to enforce with its own go/ast walk now lives in the internal/lint
// suite as the exporteddoc analyzer, driven by cmd/geminilint. This shim
// keeps the old CLI contract working (explicit package directories, exit 1
// on findings, 2 on errors) by running just that analyzer, and prints a
// pointer to the replacement on stderr. Prefer:
//
//	go run ./cmd/geminilint ./...
package main

import (
	"flag"
	"fmt"
	"os"

	"gemini/internal/lint"
)

func main() {
	flag.Bool("tests", false, "ignored (kept for CLI compatibility; the lint suite checks non-test files)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: lint-exported dir [dir...]")
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, "lint-exported: deprecated, use `go run ./cmd/geminilint` (exporteddoc analyzer)")

	l, err := lint.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	pkgs, err := l.Load(flag.Args()...)
	if err != nil {
		fatal(err)
	}
	diags, err := lint.Run(pkgs, []*lint.Analyzer{lint.ExportedDocAnalyzer})
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lint-exported: %v\n", err)
	os.Exit(2)
}
