// Command lint-exported enforces the repo's godoc contract: every package
// named on the command line must have a package doc comment, and every
// exported top-level symbol — types, functions, methods on exported types,
// and the names inside exported const/var groups — must carry a doc
// comment. It is the CI "exported-comment" lint step, built on the standard
// go/ast so it needs no external linter binary.
//
// Usage:
//
//	lint-exported [-tests] ./internal/dse ./internal/serve ...
//
// Exit status is 1 when any finding is reported, with one
// file:line: message per missing comment, revive/golint style.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	tests := flag.Bool("tests", false, "also lint _test.go files")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: lint-exported [-tests] dir [dir...]")
		os.Exit(2)
	}
	var findings []string
	for _, dir := range flag.Args() {
		fs, err := lintDir(dir, *tests)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lint-exported: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lint-exported: %d missing doc comment(s)\n", len(findings))
		os.Exit(1)
	}
}

// finding is one missing doc comment, locatable for sorting.
type finding struct {
	file string
	line int
	msg  string
}

func (f finding) String() string {
	if f.line == 0 {
		return fmt.Sprintf("%s: %s", f.file, f.msg)
	}
	return fmt.Sprintf("%s:%d: %s", f.file, f.line, f.msg)
}

// lintDir parses one directory (non-recursively, like a Go package) and
// reports every missing doc comment.
func lintDir(dir string, tests bool) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return tests || !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []finding
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		findings = append(findings, lintPackage(fset, dir, pkg)...)
	}
	sort.Slice(findings, func(a, b int) bool {
		if findings[a].file != findings[b].file {
			return findings[a].file < findings[b].file
		}
		return findings[a].line < findings[b].line
	})
	out := make([]string, len(findings))
	for i, f := range findings {
		out[i] = f.String()
	}
	return out, nil
}

func lintPackage(fset *token.FileSet, dir string, pkg *ast.Package) []finding {
	var findings []finding
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		findings = append(findings, finding{file: p.Filename, line: p.Line, msg: fmt.Sprintf(format, args...)})
	}

	hasPkgDoc := false
	// Exported type names, so methods on unexported types (invisible in
	// godoc) are not flagged.
	exportedTypes := map[string]bool{}
	for _, f := range pkg.Files {
		if f.Doc != nil {
			hasPkgDoc = true
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.IsExported() {
					exportedTypes[ts.Name.Name] = true
				}
			}
		}
	}
	if !hasPkgDoc {
		findings = append(findings, finding{file: dir, msg: fmt.Sprintf("package %s has no package doc comment", pkg.Name)})
	}

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if recv := receiverType(d); recv != "" && !exportedTypes[recv] {
					continue // method on an unexported type
				}
				if d.Doc == nil {
					report(d.Pos(), "exported %s %s has no doc comment", funcKind(d), funcName(d))
				}
			case *ast.GenDecl:
				lintGenDecl(report, d)
			}
		}
	}
	return findings
}

// lintGenDecl checks one const/var/type block. A doc comment on the block
// covers its specs (grouped constants are conventionally documented once);
// without one, every exported spec needs its own comment.
func lintGenDecl(report func(token.Pos, string, ...any), d *ast.GenDecl) {
	kind := map[token.Token]string{token.TYPE: "type", token.CONST: "const", token.VAR: "var"}[d.Tok]
	if kind == "" { // import blocks
		return
	}
	blockDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch sp := spec.(type) {
		case *ast.TypeSpec:
			if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil {
				report(sp.Pos(), "exported type %s has no doc comment", sp.Name.Name)
			}
		case *ast.ValueSpec:
			if blockDoc || sp.Doc != nil || sp.Comment != nil {
				continue
			}
			for _, n := range sp.Names {
				if n.IsExported() {
					report(n.Pos(), "exported %s %s has no doc comment (or block comment)", kind, n.Name)
				}
			}
		}
	}
}

func receiverType(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

func funcName(d *ast.FuncDecl) string {
	if recv := receiverType(d); recv != "" {
		return recv + "." + d.Name.Name
	}
	return d.Name.Name
}
