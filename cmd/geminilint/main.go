// Command geminilint runs the project's static-analysis suite
// (internal/lint) over module packages: determinism, fingerprint
// completeness, lock hygiene, hot-path allocation, error classification and
// the exported-doc contract. It is the CI lint gate; see docs/lint.md for
// each analyzer's invariant, directive and suppression syntax.
//
// Usage:
//
//	geminilint [-list] [-only a,b] [pattern ...]
//
// Patterns are import paths, directories or ./...-style wildcards; the
// default is ./... from the enclosing module. Exit status is 1 when any
// finding is reported and 2 on load or usage errors, so CI distinguishes
// "code is dirty" from "lint is broken".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gemini/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: geminilint [-list] [-only a,b] [pattern ...]")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s\n    %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		analyzers = selectAnalyzers(analyzers, *only)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	l, err := lint.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	if len(pkgs) == 0 {
		fatal(fmt.Errorf("no packages match %v", patterns))
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// selectAnalyzers filters the suite by the -only list, failing on unknown
// names so a typo cannot silently skip a check.
func selectAnalyzers(all []*lint.Analyzer, only string) []*lint.Analyzer {
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			fatal(fmt.Errorf("unknown analyzer %q (run geminilint -list)", name))
		}
		out = append(out, a)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "geminilint: %v\n", err)
	os.Exit(2)
}
