// Command gemini-map runs the Mapping Engine for one DNN on one
// architecture preset and reports delay, energy breakdown, and mapping
// statistics. It can save the explored scheme as JSON (like the artifact's
// best-scheme outputs), reload one with -scheme, dump per-core instruction
// streams, and cross-check the analytic network time against the
// event-driven contention simulator.
//
// Usage:
//
//	gemini-map -model resnet50 -arch garch72 -batch 64 -save scheme.json
//	gemini-map -model resnet50 -arch garch72 -scheme scheme.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gemini/internal/arch"
	"gemini/internal/core"
	"gemini/internal/dnn"
	"gemini/internal/dse"
	"gemini/internal/eval"
	"gemini/internal/isa"
)

func archByName(name string) (arch.Config, bool) {
	switch name {
	case "garch72":
		return arch.GArch72(), true
	case "simba":
		return arch.Simba(), true
	case "grayskull", "tarch":
		return arch.Grayskull(), true
	case "garchtorus":
		return arch.GArchTorus(), true
	}
	return arch.Config{}, false
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("gemini-map: ")

	model := flag.String("model", "resnet50", "zoo model name or @file for a text description")
	archName := flag.String("arch", "garch72", "garch72, simba, grayskull or garchtorus")
	batch := flag.Int("batch", 64, "batch size")
	saIters := flag.Int("sa", 2000, "SA iterations (0 = T-Map stripe baseline)")
	save := flag.String("save", "", "save the explored scheme JSON here")
	schemeIn := flag.String("scheme", "", "evaluate a previously saved scheme instead of exploring")
	instr := flag.Bool("instr", false, "compile and functionally verify instruction streams")
	simcheck := flag.Bool("simcheck", false, "cross-check net time with the contention simulator")
	report := flag.Bool("report", false, "print the per-group, per-layer energy & delay report")
	flag.Parse()

	cfg, ok := archByName(*archName)
	if !ok {
		log.Fatalf("unknown architecture %q", *archName)
	}

	var g *dnn.Graph
	var err error
	if len(*model) > 0 && (*model)[0] == '@' {
		f, ferr := os.Open((*model)[1:])
		if ferr != nil {
			log.Fatal(ferr)
		}
		g, err = dnn.Parse(f)
		f.Close()
	} else {
		g, err = dnn.Model(*model)
	}
	if err != nil {
		log.Fatal(err)
	}

	ev := eval.New(&cfg)
	var scheme *core.Scheme
	if *schemeIn != "" {
		f, ferr := os.Open(*schemeIn)
		if ferr != nil {
			log.Fatal(ferr)
		}
		scheme, err = core.ReadSchemeJSON(f, g)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if err := scheme.Validate(&cfg); err != nil {
			log.Fatalf("loaded scheme invalid for %s: %v", cfg.Name, err)
		}
	} else {
		opt := dse.DefaultOptions()
		opt.Batch = *batch
		opt.SAIterations = *saIters
		mr, merr := dse.MapModel(&cfg, g, opt)
		if merr != nil {
			log.Fatal(merr)
		}
		scheme = mr.SA.Scheme
	}

	r := ev.Evaluate(scheme)
	if !r.Feasible {
		log.Fatal("scheme infeasible on this architecture")
	}
	fmt.Printf("model %s (%d layers, %.2f GMACs/sample) on %s, batch %d\n",
		g.Name, len(g.Layers), float64(g.TotalMACs())/1e9, cfg.Name, scheme.Batch)
	fmt.Printf("delay  %.6g s   (%.1f samples/s)\n", r.Delay, float64(scheme.Batch)/r.Delay)
	e := r.Energy
	fmt.Printf("energy %.6g J   (dram %.3g, noc %.3g, d2d %.3g, intra %.3g)\n",
		e.Total(), e.DRAM, e.NoC, e.D2D, e.IntraCore())
	fmt.Printf("groups %d, avg %.1f layers/stage, DRAM traffic %.4g MB\n",
		len(scheme.Groups), eval.AvgLayersPerGroup(scheme), r.DRAMBytes/1e6)

	if *instr {
		total := 0
		for gi := range scheme.Groups {
			an, aerr := core.Analyze(scheme, gi, &cfg)
			if aerr != nil {
				log.Fatal(aerr)
			}
			p, cerr := isa.Compile(an)
			if cerr != nil {
				log.Fatal(cerr)
			}
			if _, rerr := isa.Run(p); rerr != nil {
				log.Fatalf("group %d instruction verification failed: %v", gi, rerr)
			}
			total += p.Len()
		}
		fmt.Printf("instructions: %d across %d groups, functionally verified\n", total, len(scheme.Groups))
	}
	if *simcheck {
		for gi := range scheme.Groups {
			sim, analytic, serr := ev.SimulateGroupNet(scheme, gi)
			if serr != nil {
				log.Fatal(serr)
			}
			fmt.Printf("group %2d net time: analytic %.4g s, simulated %.4g s (x%.2f)\n",
				gi, analytic, sim, sim/analytic)
		}
	}

	if *report {
		rep, rerr := ev.Report(scheme)
		if rerr != nil {
			log.Fatal(rerr)
		}
		fmt.Println()
		rep.Print(os.Stdout)
	}

	if *save != "" {
		f, ferr := os.Create(*save)
		if ferr != nil {
			log.Fatal(ferr)
		}
		defer f.Close()
		if err := scheme.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("scheme saved to %s\n", *save)
	}
}
