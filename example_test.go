package gemini_test

import (
	"fmt"

	"gemini"
)

// ExampleMap shows the basic Mapping Engine flow on a preset architecture.
func ExampleMap() {
	cfg := gemini.GArch72()
	model, err := gemini.LoadModel("googlenet")
	if err != nil {
		panic(err)
	}
	opt := gemini.DefaultMapOptions()
	opt.Batch = 4
	opt.SAIterations = 50 // demo budget
	m, err := gemini.Map(&cfg, model, opt)
	if err != nil {
		panic(err)
	}
	fmt.Println("feasible:", m.Result.Feasible)
	fmt.Println("groups >= 1:", len(m.Scheme.Groups) >= 1)
	// Output:
	// feasible: true
	// groups >= 1: true
}

// ExampleMonetaryCost evaluates an architecture's monetary cost breakdown.
func ExampleMonetaryCost() {
	cfg := gemini.SimbaArch()
	mc := gemini.MonetaryCost(&cfg)
	fmt.Println("has silicon cost:", mc.Silicon() > 0)
	fmt.Println("has DRAM cost:", mc.DRAM > 0)
	// Output:
	// has silicon cost: true
	// has DRAM cost: true
}

// ExampleScaleArch replicates one chiplet into a larger accelerator.
func ExampleScaleArch() {
	base := gemini.GArch72()
	big, err := gemini.ScaleArch(base, 4)
	if err != nil {
		panic(err)
	}
	fmt.Println("cores x4:", big.Cores() == 4*base.Cores())
	fmt.Println("same chiplet:", big.ChipletW() == base.ChipletW() && big.ChipletH() == base.ChipletH())
	// Output:
	// cores x4: true
	// same chiplet: true
}
