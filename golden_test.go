package gemini

import (
	"testing"

	"gemini/internal/arch"
	"gemini/internal/core"
	"gemini/internal/dnn"
	"gemini/internal/eval"
	"gemini/internal/graphpart"
	"gemini/internal/sa"
)

// Golden fixed-seed SA outcomes, captured on the pre-optimization engine
// (allocating Analyze, per-call Traffic, full re-measure on OP5, full
// best-scheme clones). The incremental-evaluation machinery must reproduce
// them bit-for-bit: it is a pure caching/scheduling change, not a model
// change. If an intentional model change breaks these, recapture the
// constants in the same commit and say so.
const (
	goldenResNetInitCost = 0.0027616015894533059
	goldenResNetSeed1    = 0.0027483307773398294
	goldenResNetSeed7    = 0.0027616015894533059
	goldenTinyTfInit     = 1.2292062812569601e-10
	goldenTinyTfSeed3    = 7.5628224184320007e-11
)

// TestGoldenSAResNet50 pins the resnet50-on-GArch72 annealing outcome for
// two seeds at 150 iterations.
func TestGoldenSAResNet50(t *testing.T) {
	cfg := arch.GArch72()
	g := dnn.ResNet50()
	part, err := graphpart.Partition(g, &cfg, eval.New(&cfg), 64, graphpart.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for seed, want := range map[int64]float64{1: goldenResNetSeed1, 7: goldenResNetSeed7} {
		opt := sa.DefaultOptions()
		opt.Iterations = 150
		opt.Seed = seed
		r := sa.Optimize(part.Scheme, eval.New(&cfg), opt)
		if r.InitCost != goldenResNetInitCost {
			t.Errorf("seed %d: init cost %.17g, golden %.17g", seed, r.InitCost, goldenResNetInitCost)
		}
		if r.Cost != want {
			t.Errorf("seed %d: best cost %.17g, golden %.17g", seed, r.Cost, want)
		}
	}
}

// TestGoldenSATinyTransformer pins the stripe-scheme annealing outcome used
// by the micro-benchmarks (seed 3, 400 iterations).
func TestGoldenSATinyTransformer(t *testing.T) {
	cfg := arch.GArch72()
	g := dnn.TinyTransformer()
	ids := make([]int, len(g.Layers))
	for i := range ids {
		ids[i] = i
	}
	s, err := core.StripeScheme(g, &cfg, [][]int{ids}, []int{2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	opt := sa.DefaultOptions()
	opt.Iterations = 400
	opt.Seed = 3
	r := sa.Optimize(s, eval.New(&cfg), opt)
	if r.InitCost != goldenTinyTfInit {
		t.Errorf("init cost %.17g, golden %.17g", r.InitCost, goldenTinyTfInit)
	}
	if r.Cost != goldenTinyTfSeed3 {
		t.Errorf("best cost %.17g, golden %.17g", r.Cost, goldenTinyTfSeed3)
	}
}
