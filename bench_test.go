// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (run `go test -bench=. -benchmem`), plus micro-benchmarks of
// the framework's hot paths and ablations of its design choices. Each
// figure benchmark reports the headline quantities of the corresponding
// paper result as custom metrics.
package gemini

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"gemini/internal/arch"
	"gemini/internal/core"
	"gemini/internal/dnn"
	"gemini/internal/dse"
	"gemini/internal/eval"
	"gemini/internal/experiments"
	"gemini/internal/fleet"
	"gemini/internal/graphpart"
	"gemini/internal/noc"
	"gemini/internal/sa"
	"gemini/internal/space"
)

func benchOptions() experiments.Options {
	o := experiments.QuickOptions()
	o.SAIterations = 100
	o.Batches = []int{2}
	return o
}

// BenchmarkTableI_SpaceEnumeration regenerates the Table I candidate grids.
func BenchmarkTableI_SpaceEnumeration(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n = len(dse.Space72().Enumerate()) + len(dse.Space128().Enumerate()) + len(dse.Space512().Enumerate())
	}
	b.ReportMetric(float64(n), "candidates")
}

// BenchmarkFig5_OverallComparison regenerates the Fig. 5 comparison and
// reports the headline gains (paper: 1.98x perf, 1.41x energy, +14.3% MC).
func BenchmarkFig5_OverallComparison(b *testing.B) {
	var r *experiments.Fig5Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig5(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.PerfGain, "perf_gain_x")
	b.ReportMetric(r.EnergyGain, "energy_gain_x")
	b.ReportMetric(100*r.MCIncrease, "mc_increase_%")
}

// BenchmarkVIB2_TorusComparison regenerates the Sec. VI-B2 folded-torus
// comparison (paper: 1.74x perf, 1.13x energy, -40.1% MC).
func BenchmarkVIB2_TorusComparison(b *testing.B) {
	var r *experiments.TArchResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.TArch(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.PerfGain, "perf_gain_x")
	b.ReportMetric(r.EnergyGain, "energy_gain_x")
	b.ReportMetric(-100*r.MCReduction, "mc_delta_%")
}

// BenchmarkFig6_DesignSpaceScatter regenerates the Fig. 6 EDP/MC scatter.
func BenchmarkFig6_DesignSpaceScatter(b *testing.B) {
	var r *experiments.Fig6Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig6(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(r.Points)), "candidates")
	if ch, ok := r.OptimaChiplets["128TOPs-tiny/MC*E*D"]; ok {
		b.ReportMetric(float64(ch), "optimum_chiplets_128T")
	}
}

// BenchmarkFig7_ObjectiveOptima regenerates the Fig. 7 four-objective
// analysis (reports the MC*E*D optimum's pipeline length).
func BenchmarkFig7_ObjectiveOptima(b *testing.B) {
	var r *experiments.Fig7Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig7(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range r.Rows {
		if row.Objective == "MC*E*D" {
			b.ReportMetric(row.AvgLayersPerGroup, "layers_per_stage")
			b.ReportMetric(float64(row.Cores), "optimum_cores")
		}
	}
}

// BenchmarkFig8_ChipletReuse regenerates the Fig. 8 reuse study (paper:
// joint-optimal gap ~+34%).
func BenchmarkFig8_ChipletReuse(b *testing.B) {
	var r *experiments.Fig8Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig8(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*r.JointGap, "joint_gap_%")
}

// BenchmarkFig9_TrafficHeatmap regenerates the Fig. 9 heatmap comparison
// (paper: -34.2% hops, -74% D2D hops on the hot links).
func BenchmarkFig9_TrafficHeatmap(b *testing.B) {
	var r *experiments.Fig9Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig9(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*r.HopReduction, "hop_reduction_%")
	b.ReportMetric(100*r.D2DReduction, "d2d_reduction_%")
}

// BenchmarkFig8a_ChipletGranularity regenerates the Fig. 8(a) granularity
// sweep (paper insight 1: moderate counts win, 36 chiplets lose).
func BenchmarkFig8a_ChipletGranularity(b *testing.B) {
	var r *experiments.GranularityResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.ChipletGranularity(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.BestChiplets), "best_chiplets")
	for _, row := range r.Rows {
		if row.Chiplets == 36 {
			b.ReportMetric(row.MCED, "mced_36chiplets_norm")
		}
	}
}

// BenchmarkIVB_SpaceSize regenerates the Sec. IV-B space-size table.
func BenchmarkIVB_SpaceSize(b *testing.B) {
	var adv float64
	for i := 0; i < b.N; i++ {
		adv = space.LogAdvantage(36, 8)
	}
	b.ReportMetric(adv, "log10_advantage_M36_N8")
}

// --- DSE session benchmarks (BENCH_2): cold vs warm shared cache,
// single-seed vs portfolio restarts. ---

// sweepBench returns a small GArch72-class candidate sweep. Candidates and
// models are rebuilt per call; callers that want warm-cache behavior must
// hold on to one return value (cache keys include graph identity).
func sweepBench() ([]arch.Config, []*dnn.Graph, dse.Options) {
	v1 := arch.GArch72()
	v2 := arch.GArch72()
	v2.NoCBW, v2.D2DBW = 64, 32
	v2.Name = v2.String()
	v3 := arch.GArch72()
	v3.GLBPerCore *= 2
	v3.Name = v3.String()
	models := []*dnn.Graph{dnn.TinyCNN(), dnn.TinyTransformer()}
	opt := dse.DefaultOptions()
	opt.Batch = 8
	opt.SAIterations = 150
	opt.MaxGroupLayers = 7
	opt.BatchUnits = []int{1, 2}
	return []arch.Config{v1, v2, v3}, models, opt
}

// BenchmarkDSESessionSweepCold measures the GArch72 sweep on a fresh
// session each iteration: every candidate pays cold route tables, memos and
// group evaluations. Seeds vary per iteration exactly as in the warm bench,
// so the two are directly comparable.
func BenchmarkDSESessionSweepCold(b *testing.B) {
	cands, models, opt := sweepBench()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(i) + 1
		ses := dse.NewSession()
		if dse.Best(ses.Run(cands, models, opt)) == nil {
			b.Fatal("no feasible candidate")
		}
	}
}

// BenchmarkDSESessionSweepWarm measures the same sweep re-run on one
// long-lived session. Seeds vary per iteration so the SA search genuinely
// re-runs (checkpoint cells miss) — the speedup over the cold bench is the
// shared evaluation cache, not result replay.
func BenchmarkDSESessionSweepWarm(b *testing.B) {
	cands, models, opt := sweepBench()
	ses := dse.NewSession()
	opt.Seed = 1 << 20 // prime the cache with a seed the loop never uses
	if dse.Best(ses.Run(cands, models, opt)) == nil {
		b.Fatal("no feasible candidate")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(i) + 1
		if dse.Best(ses.Run(cands, models, opt)) == nil {
			b.Fatal("no feasible candidate")
		}
	}
	b.StopTimer()
	st := ses.CacheStats()
	b.ReportMetric(100*st.HitRate(), "cache_hit_%")
}

// benchRestarts measures a fresh-session sweep at the given SA portfolio
// width; restarts after the first race over the session's warm cache.
func benchRestarts(b *testing.B, restarts int) {
	cands, models, opt := sweepBench()
	opt.Restarts = restarts
	for i := 0; i < b.N; i++ {
		ses := dse.NewSession()
		if dse.Best(ses.Run(cands, models, opt)) == nil {
			b.Fatal("no feasible candidate")
		}
	}
}

// BenchmarkDSESweepRestarts1 is the single-seed baseline sweep.
func BenchmarkDSESweepRestarts1(b *testing.B) { benchRestarts(b, 1) }

// BenchmarkDSESweepRestarts4 runs a 4-seed SA portfolio per (candidate,
// model) cell; the shared cache keeps the cost well under 4x restarts=1.
func BenchmarkDSESweepRestarts4(b *testing.B) { benchRestarts(b, 4) }

// --- Sweep scheduler benchmarks (BENCH_3): grid vs bound-ordered dispatch,
// fixed vs adaptive SA portfolios, under bound pruning. ---

// schedulerBench returns a pruning-friendly sweep: the three GArch72-class
// variants of sweepBench plus five down-clocked (same monetary cost, 64-256x
// lower peak throughput) candidates whose delay lower bound is hopeless
// under MC*E*D once any full-speed candidate has finished. The weak
// candidates come FIRST in grid order, so the naive schedule maps all of
// them before the incumbent exists, while the bound-ordered schedule runs
// the full-speed candidates first and prunes the weak tail without mapping
// it. Workers are pinned so the schedule (and therefore the headline) does
// not depend on the host's core count.
func schedulerBench() ([]arch.Config, []*dnn.Graph, dse.Options) {
	strong, models, opt := sweepBench()
	var cands []arch.Config
	for _, div := range []float64{64, 96, 128, 192, 256} {
		w := arch.GArch72()
		w.FreqGHz /= div
		w.Name = fmt.Sprintf("%s-slow%d", w.Name, int(div))
		cands = append(cands, w)
	}
	cands = append(cands, strong...)
	opt.Prune = true
	opt.Restarts = 4
	opt.Workers = 4
	return cands, models, opt
}

// benchScheduler runs the scheduler sweep at the given order/patience and
// reports the scheduler's work-saved accounting as custom metrics.
func benchScheduler(b *testing.B, order dse.SweepOrder, patience int) *dse.CandidateResult {
	cands, models, opt := schedulerBench()
	opt.Order = order
	opt.Patience = patience
	var best *dse.CandidateResult
	var stats dse.SweepStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ses := dse.NewSession()
		best = dse.Best(ses.Run(cands, models, opt))
		if best == nil {
			b.Fatal("no feasible candidate")
		}
		stats = ses.LastSweepStats()
	}
	b.StopTimer()
	b.ReportMetric(float64(stats.PrunedCandidates), "pruned_candidates")
	b.ReportMetric(float64(stats.AbandonedRestarts), "abandoned_restarts")
	b.ReportMetric(float64(stats.SkippedRestarts), "skipped_restarts")
	return best
}

// BenchmarkDSESweepGridFixed is the pre-scheduler baseline: grid dispatch
// order, full fixed 4-restart portfolios.
func BenchmarkDSESweepGridFixed(b *testing.B) { benchScheduler(b, dse.OrderGrid, 0) }

// BenchmarkDSESweepOrdered dispatches in ascending lower-bound order with
// the same fixed portfolios: pruning soundness guarantees the same best
// result, the weak tail just never gets mapped.
func BenchmarkDSESweepOrdered(b *testing.B) {
	got := benchScheduler(b, dse.OrderBound, 0)
	b.StopTimer()
	cands, models, opt := schedulerBench()
	opt.Order = dse.OrderGrid
	want := dse.Best(dse.Run(cands, models, opt))
	if want == nil || got.Obj != want.Obj || got.Cfg.Name != want.Cfg.Name {
		b.Fatalf("ordered sweep best %s (%g) differs from grid %s (%g)",
			got.Cfg.Name, got.Obj, want.Cfg.Name, want.Obj)
	}
}

// BenchmarkDSESweepAdaptive adds the adaptive portfolio: bound order plus
// patience-1 early stopping of non-improving restarts.
func BenchmarkDSESweepAdaptive(b *testing.B) { benchScheduler(b, dse.OrderBound, 1) }

// --- Micro-benchmarks of the framework's hot paths. ---

// BenchmarkSAOptimize measures the full Mapping Engine hot loop — one SA
// search over the DP-partitioned resnet50 LP SPM on GArch72 — the path every
// DSE candidate and every figure pays. A fresh Evaluator per run mirrors
// dse.MapModel, so per-run route-table and memo build costs are included.
func BenchmarkSAOptimize(b *testing.B) {
	cfg := arch.GArch72()
	g := dnn.ResNet50()
	part, err := graphpart.Partition(g, &cfg, eval.New(&cfg), 64, graphpart.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	opt := sa.DefaultOptions()
	opt.Iterations = 200
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := sa.Optimize(part.Scheme, eval.New(&cfg), opt); !r.Eval.Feasible {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkEvaluateGroup measures repeated evaluation of one resnet50 layer
// group on a shared Evaluator — the SA engine's per-iteration unit of work,
// dominated by rejected-then-retried states that revisit identical groups.
func BenchmarkEvaluateGroup(b *testing.B) {
	cfg := arch.GArch72()
	g := dnn.ResNet50()
	ev := eval.New(&cfg)
	part, err := graphpart.Partition(g, &cfg, ev, 64, graphpart.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if gr := ev.EvaluateGroup(part.Scheme, i%len(part.Scheme.Groups)); !gr.Feasible {
			b.Fatal("infeasible")
		}
	}
}

func benchScheme(b *testing.B) (*core.Scheme, *arch.Config) {
	b.Helper()
	cfg := arch.GArch72()
	g := dnn.TinyTransformer()
	ids := make([]int, len(g.Layers))
	for i := range ids {
		ids[i] = i
	}
	s, err := core.StripeScheme(g, &cfg, [][]int{ids}, []int{2}, 8)
	if err != nil {
		b.Fatal(err)
	}
	return s, &cfg
}

func BenchmarkAnalyzeGroup(b *testing.B) {
	s, cfg := benchScheme(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(s, 0, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateScheme(b *testing.B) {
	s, cfg := benchScheme(b)
	ev := eval.New(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := ev.Evaluate(s); !r.Feasible {
			b.Fatal("infeasible")
		}
	}
}

func BenchmarkSAStep(b *testing.B) {
	s, cfg := benchScheme(b)
	ev := eval.New(cfg)
	opt := sa.DefaultOptions()
	opt.Iterations = b.N
	b.ResetTimer()
	sa.Optimize(s, ev, opt)
}

func BenchmarkGraphPartitionResNet50(b *testing.B) {
	cfg := arch.GArch72()
	g := dnn.ResNet50()
	ev := eval.New(&cfg)
	opt := graphpart.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graphpart.Partition(g, &cfg, ev, 64, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapTransformerFull(b *testing.B) {
	cfg := arch.GArch72()
	g := dnn.Transformer()
	opt := dse.DefaultOptions()
	opt.SAIterations = 300
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dse.MapModel(&cfg, g, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNoCRoute(b *testing.B) {
	cfg := arch.Grayskull()
	net := noc.New(&cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Route(arch.CoreID(i%cfg.Cores()), arch.CoreID((i*7+13)%cfg.Cores()))
	}
}

func BenchmarkMonetaryCost(b *testing.B) {
	cfg := arch.GArch72()
	for i := 0; i < b.N; i++ {
		MonetaryCost(&cfg)
	}
}

// --- Ablations of design choices called out in DESIGN.md. ---

// BenchmarkAblation_MulticastVsUnicast quantifies the traffic saved by the
// NoC multicast trees the analyzer emits, on a channel-partitioned consumer
// (every consumer core needs the producer's full output).
func BenchmarkAblation_MulticastVsUnicast(b *testing.B) {
	cfg := arch.GArch72()
	g := dnn.TinyCNN()
	s, err := core.StripeScheme(g, &cfg, [][]int{{0, 1}}, []int{1}, 1)
	if err != nil {
		b.Fatal(err)
	}
	// Re-partition the consumer conv across output channels so all of its
	// cores need the identical producer region.
	ms := s.Groups[0].MSs[1]
	k := len(ms.CG)
	if k > g.Layer(1).OK {
		k = g.Layer(1).OK
	}
	ms.CG = ms.CG[:k]
	ms.Part = core.Part{H: 1, W: 1, B: 1, K: k}
	an, err := core.Analyze(s, 0, &cfg)
	if err != nil {
		b.Fatal(err)
	}
	net := noc.New(&cfg)
	var multi, uni float64
	for i := 0; i < b.N; i++ {
		tm := net.NewTraffic()
		tu := net.NewTraffic()
		for _, f := range an.ActFlows {
			tm.AddMulticast(f.Src, f.Dsts, f.Bytes)
			for _, d := range f.Dsts {
				tu.AddUnicast(f.Src, d, f.Bytes)
			}
		}
		mo, md, _ := tm.TotalBytes()
		uo, ud, _ := tu.TotalBytes()
		multi, uni = mo+md, uo+ud
	}
	b.ReportMetric(uni/multi, "unicast_over_multicast_x")
}

// BenchmarkAblation_D2DEnergyModels compares the clock-forwarding (GRS) and
// clock-embedded (SerDes) D2D energy models of Sec. V-B2.
func BenchmarkAblation_D2DEnergyModels(b *testing.B) {
	s, cfg := benchScheme(b)
	grs := eval.New(cfg)
	sd := eval.New(cfg)
	sd.Params.D2DModel = eval.SerDes
	var rg, rs eval.Result
	for i := 0; i < b.N; i++ {
		rg = grs.Evaluate(s)
		rs = sd.Evaluate(s)
	}
	b.ReportMetric(rs.Energy.D2D/rg.Energy.D2D, "serdes_over_grs_x")
}

// BenchmarkAblation_SAOperators measures how much each exploration budget
// buys over the stripe baseline (the value of the five-operator SA).
func BenchmarkAblation_SAOperators(b *testing.B) {
	s, cfg := benchScheme(b)
	ev := eval.New(cfg)
	var impr float64
	for i := 0; i < b.N; i++ {
		opt := sa.DefaultOptions()
		opt.Iterations = 400
		r := sa.Optimize(s, ev, opt)
		impr = r.Improvement()
	}
	b.ReportMetric(impr, "sa_improvement_x")
}

// BenchmarkAblation_OperatorSubsets compares the full five-operator SA
// against searches restricted to single operator families, quantifying the
// paper's claim that the operator set jointly spans the space.
func BenchmarkAblation_OperatorSubsets(b *testing.B) {
	s, cfg := benchScheme(b)
	ev := eval.New(cfg)
	run := func(ops []core.Op) float64 {
		opt := sa.DefaultOptions()
		opt.Iterations = 400
		opt.Ops = ops
		return sa.Optimize(s, ev, opt).Improvement()
	}
	var full, partOnly, swapOnly float64
	for i := 0; i < b.N; i++ {
		full = run(nil)
		partOnly = run([]core.Op{core.OpPart})
		swapOnly = run([]core.Op{core.OpSwapIntra, core.OpSwapInter})
	}
	b.ReportMetric(full, "full_improvement_x")
	b.ReportMetric(partOnly, "part_only_x")
	b.ReportMetric(swapOnly, "swaps_only_x")
}

// BenchmarkAblation_GraphPartitionDP compares the DP partitioner against a
// naive fixed-size chunking of the layer list.
func BenchmarkAblation_GraphPartitionDP(b *testing.B) {
	cfg := arch.GArch72()
	g := dnn.TinyTransformer()
	ev := eval.New(&cfg)
	var ratio float64
	for i := 0; i < b.N; i++ {
		dp, err := graphpart.Partition(g, &cfg, ev, 8, graphpart.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		var chunks [][]int
		var bus []int
		for lo := 0; lo < len(g.Layers); lo += 6 {
			hi := lo + 6
			if hi > len(g.Layers) {
				hi = len(g.Layers)
			}
			ids := make([]int, 0, hi-lo)
			for id := lo; id < hi; id++ {
				ids = append(ids, id)
			}
			chunks = append(chunks, ids)
			bus = append(bus, 1)
		}
		naive, err := core.StripeScheme(g, &cfg, chunks, bus, 8)
		if err != nil {
			b.Fatal(err)
		}
		rd := ev.Evaluate(dp.Scheme)
		rn := ev.Evaluate(naive)
		ratio = eval.Cost(rn, 1, 1) / eval.Cost(rd, 1, 1)
	}
	b.ReportMetric(ratio, "naive_over_dp_cost_x")
}

// --- Pruning engine v2 benchmarks (BENCH_5): compulsory-traffic bounds,
// in-loop abandonment, disk-backed cache warmth. ---

// weakDRAMBench returns the weak-first pruning workload for the bound
// benchmarks: the three full-speed sweepBench variants plus five
// DRAM-starved candidates (64-128x less DRAM bandwidth at nearly the same
// monetary cost). Their compute and weight-DRAM floors stay harmless — the
// PR 3 bound maps all five in full — but their compulsory activation
// traffic already exceeds any full-speed candidate's objective, so the
// compulsory-traffic bound prunes them without mapping. Weak candidates
// come FIRST in grid order; workers are pinned so the schedule does not
// depend on the host's core count.
func weakDRAMBench() ([]arch.Config, []*dnn.Graph, dse.Options) {
	strong, models, opt := sweepBench()
	var cands []arch.Config
	for _, div := range []float64{64, 80, 96, 112, 128} {
		w := arch.GArch72()
		w.DRAMBW /= div
		w.Name = fmt.Sprintf("%s-dram%d", w.Name, int(div))
		cands = append(cands, w)
	}
	cands = append(cands, strong...)
	opt.Prune = true
	opt.Order = dse.OrderBound
	opt.Restarts = 4
	opt.Workers = 4
	return cands, models, opt
}

// benchBoundLevel runs the weak-first sweep at one bound level and reports
// the scheduler's pruning and iteration accounting.
func benchBoundLevel(b *testing.B, level dse.BoundLevel) *dse.CandidateResult {
	cands, models, opt := weakDRAMBench()
	opt.Bound = level
	var best *dse.CandidateResult
	var stats dse.SweepStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ses := dse.NewSession()
		best = dse.Best(ses.Run(cands, models, opt))
		if best == nil {
			b.Fatal("no feasible candidate")
		}
		stats = ses.LastSweepStats()
	}
	b.StopTimer()
	b.ReportMetric(float64(stats.PrunedCandidates), "pruned_candidates")
	b.ReportMetric(float64(stats.SAIterations), "sa_iterations")
	return best
}

// BenchmarkDSESweepPR3Bound is the baseline: the compute + weight-DRAM
// bound cannot see the starved candidates' compulsory activation traffic,
// so the whole weak tail is mapped in full.
func BenchmarkDSESweepPR3Bound(b *testing.B) { benchBoundLevel(b, dse.BoundComputeDRAM) }

// BenchmarkDSESweepTightBound runs the identical sweep under the
// compulsory-traffic bound: the weak tail is pruned without mapping, and —
// soundness, asserted here — the best candidate and objective are
// bit-identical to the PR 3 bound's.
func BenchmarkDSESweepTightBound(b *testing.B) {
	got := benchBoundLevel(b, dse.BoundCompulsory)
	b.StopTimer()
	cands, models, opt := weakDRAMBench()
	opt.Bound = dse.BoundComputeDRAM
	want := dse.Best(dse.Run(cands, models, opt))
	if want == nil || got.Obj != want.Obj || got.Cfg.Name != want.Cfg.Name {
		b.Fatalf("tight-bound sweep best %s (%g) differs from PR 3 bound %s (%g): the new bound is unsound",
			got.Cfg.Name, got.Obj, want.Cfg.Name, want.Obj)
	}
}

// BenchmarkDSESweepHardened re-runs the tight-bound weak-first sweep with
// the fault-tolerance machinery fully armed — a retry policy, a per-cell
// deadline (which moves every attempt onto the watchdog goroutine path),
// and no faults firing — so it measures exactly what hardening costs a
// healthy sweep vs BenchmarkDSESweepTightBound, its fault-free twin in the
// same run. The bench-compare -hardened-factor gate holds the pair within a
// few percent: arming the machinery must cost ~nothing when nothing fails.
func BenchmarkDSESweepHardened(b *testing.B) {
	cands, models, opt := weakDRAMBench()
	opt.Bound = dse.BoundCompulsory
	opt.Retry = dse.RetryPolicy{Max: 2, BaseDelay: time.Millisecond}
	opt.CellTimeout = time.Minute
	var best *dse.CandidateResult
	var stats dse.SweepStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ses := dse.NewSession()
		best = dse.Best(ses.Run(cands, models, opt))
		if best == nil {
			b.Fatal("no feasible candidate")
		}
		stats = ses.LastSweepStats()
	}
	b.StopTimer()
	if stats.Retries != 0 || stats.Panics != 0 || stats.DeadlineExceeded != 0 {
		b.Fatalf("fault-free hardened sweep recorded faults: %+v", stats)
	}
	// Soundness: the hardened sweep finds the same best as the bare one.
	cands, models, opt = weakDRAMBench()
	opt.Bound = dse.BoundCompulsory
	want := dse.Best(dse.Run(cands, models, opt))
	if want == nil || best.Obj != want.Obj || best.Cfg.Name != want.Cfg.Name {
		b.Fatalf("hardened sweep best %s (%g) differs from bare %s (%g)",
			best.Cfg.Name, best.Obj, want.Cfg.Name, want.Obj)
	}
	b.ReportMetric(float64(stats.PrunedCandidates), "pruned_candidates")
	b.ReportMetric(float64(stats.SAIterations), "sa_iterations")
}

// BenchmarkDSESweepInLoopAbandon measures the in-loop abandonment mechanism
// on a dominated cell at a deterministic domination point: a 4-restart
// portfolio whose candidate becomes dominated a third of the way into the
// second restart. The Dominated hook stops it within one polling stride;
// the between-restart baseline (same domination point exposed only through
// the Stop gate) burns the rest of the restart first. The strict iteration
// reduction is asserted in-bench and both counts are reported.
func BenchmarkDSESweepInLoopAbandon(b *testing.B) {
	cfg := arch.GArch72()
	g := dnn.TinyCNN()
	part, err := graphpart.Partition(g, &cfg, eval.New(&cfg), 8, graphpart.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	opt := sa.DefaultOptions()
	opt.Iterations = 150
	opt.CheckEvery = 32
	const restarts = 4
	// Domination lands mid-restart 2: after all polls of restart 1 plus a
	// third of restart 2's.
	pollsPerRestart := opt.Iterations/opt.CheckEvery - 1
	fireAfter := pollsPerRestart + pollsPerRestart/3 + 1

	runPortfolio := func(inLoop bool) sa.Portfolio {
		polls := 0
		o := opt
		ao := sa.AdaptiveOptions{}
		dominated := func() bool {
			polls++
			return polls > fireAfter
		}
		if inLoop {
			o.Dominated = func(float64) bool { return dominated() }
		} else {
			// Between-restart checks only: poll on the same schedule (the
			// Stop gate runs once per restart boundary), so the domination
			// point is identical but only boundaries can act on it.
			o.Dominated = func(float64) bool { dominated(); return false }
			ao.Stop = func() bool { return polls > fireAfter }
		}
		return sa.MultiStartAdaptive(part.Scheme, eval.New(&cfg), o, restarts, ao)
	}

	var inLoop sa.Portfolio
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inLoop = runPortfolio(true)
	}
	b.StopTimer()
	boundary := runPortfolio(false)
	if !inLoop.Abandoned || !boundary.Abandoned {
		b.Fatalf("dominated portfolio not abandoned: in-loop %v, boundary %v", inLoop.Abandoned, boundary.Abandoned)
	}
	if inLoop.Iterations >= boundary.Iterations {
		b.Fatalf("in-loop abandonment saved nothing: %d vs %d iterations", inLoop.Iterations, boundary.Iterations)
	}
	b.ReportMetric(float64(inLoop.Iterations), "sa_iterations")
	b.ReportMetric(float64(boundary.Iterations), "boundary_sa_iterations")
}

// BenchmarkDSESweepDiskWarm is BenchmarkDSESessionSweepWarm with the warmth
// coming from a predecessor process's disk spill instead of this process's
// own priming run: a fresh session loads the spill, then re-runs the sweep
// with per-iteration seeds. The bench-compare gate holds it within 1.5x of
// the in-process warm sweep — the claim is that cross-process warmth costs
// almost nothing over in-process warmth. The background saver is exercised
// by the priming run (and its correctness by the race tests), but excluded
// from the timed loop: its cost amortizes over real sweep durations, not
// over a benchmark iteration shorter than one cache serialization. After
// timing, a second fresh session replays the priming sweep from the spill
// and must recompute zero group evaluations — the
// killed-and-restarted-process guarantee.
func BenchmarkDSESweepDiskWarm(b *testing.B) {
	cands, models, opt := sweepBench()
	dir := b.TempDir()
	prime := opt
	prime.Seed = 1 << 20 // prime the spill with a seed the loop never uses
	prime.CacheDir = dir
	if dse.Best(dse.NewSession().Run(cands, models, prime)) == nil {
		b.Fatal("no feasible candidate")
	}

	ses := dse.NewSession()
	if n, err := ses.WarmDiskCache(dir); err != nil || n == 0 {
		b.Fatalf("disk warm failed: n=%d err=%v", n, err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(i) + 1
		if dse.Best(ses.Run(cands, models, opt)) == nil {
			b.Fatal("no feasible candidate")
		}
	}
	b.StopTimer()
	st := ses.CacheStats()
	if st.DiskLoaded == 0 || st.DiskHits == 0 {
		b.Fatalf("sweep was not disk-warmed: %+v", st)
	}
	b.ReportMetric(100*st.HitRate(), "cache_hit_%")
	b.ReportMetric(float64(st.DiskHits), "disk_hits")

	// Restart proof: a third session warms from the final spill and replays
	// the priming sweep — every group evaluation must hit.
	replay := dse.NewSession()
	if n, err := replay.WarmDiskCache(dir); err != nil || n == 0 {
		b.Fatalf("replay warm failed: n=%d err=%v", n, err)
	}
	prime.CacheDir = "" // replay measures pure warmth: no re-spill
	if dse.Best(replay.Run(cands, models, prime)) == nil {
		b.Fatal("replay found no feasible candidate")
	}
	if rst := replay.CacheStats(); rst.Misses != 0 {
		b.Fatalf("restarted session recomputed %d group evaluations, want 0", rst.Misses)
	}
}

// --- Search engine v3 benchmarks (BENCH_8): racing restart allocation and
// the per-cut bisection delay bound. ---

// racingBench returns the racing workload: eight GArch72 variants spanning a
// wide quality range (degraded NoC, D2D and DRAM bandwidth, doubled GLB),
// pruning off so the only work-saver under test is the restart race itself.
// Workers are pinned so the schedule does not depend on the host's core
// count.
func racingBench() ([]arch.Config, []*dnn.Graph, dse.Options) {
	muts := []func(c *arch.Config){
		func(c *arch.Config) {},
		func(c *arch.Config) { c.NoCBW, c.D2DBW = 64, 32 },
		func(c *arch.Config) { c.GLBPerCore *= 2 },
		func(c *arch.Config) { c.DRAMBW /= 2 },
		func(c *arch.Config) { c.DRAMBW /= 4 },
		func(c *arch.Config) { c.NoCBW, c.D2DBW = 32, 16 },
		func(c *arch.Config) { c.GLBPerCore *= 2; c.DRAMBW /= 2 },
		func(c *arch.Config) { c.NoCBW, c.D2DBW = 64, 32; c.DRAMBW /= 2 },
	}
	var cands []arch.Config
	for i, mut := range muts {
		c := arch.GArch72()
		mut(&c)
		c.Name = fmt.Sprintf("%s-v%d", c.String(), i)
		cands = append(cands, c)
	}
	opt := dse.DefaultOptions()
	opt.Batch = 8
	opt.SAIterations = 150
	opt.MaxGroupLayers = 7
	opt.BatchUnits = []int{1, 2}
	opt.Restarts = 4
	opt.Workers = 4
	opt.Prune = false
	return cands, []*dnn.Graph{dnn.TinyCNN()}, opt
}

// BenchmarkDSESweepRacing times the successive-halving sweep over the
// racing workload and asserts the tentpole claim in-bench: the race spends
// at least 1.5x fewer total SA iterations than its uniform twin while
// finding the bit-identical best candidate (finalists run the full
// portfolio width, so racing may only cheapen the losers). Both iteration
// counts are reported; the bench-compare -racing-factor gate holds the
// ratio.
func BenchmarkDSESweepRacing(b *testing.B) {
	cands, models, opt := racingBench()
	opt.Racing = true
	var best *dse.CandidateResult
	var stats dse.SweepStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ses := dse.NewSession()
		best = dse.Best(ses.Run(cands, models, opt))
		if best == nil {
			b.Fatal("no feasible candidate")
		}
		stats = ses.LastSweepStats()
	}
	b.StopTimer()
	opt.Racing = false
	ses := dse.NewSession()
	want := dse.Best(ses.Run(cands, models, opt))
	ustats := ses.LastSweepStats()
	if want == nil || best.Obj != want.Obj || best.Cfg.Name != want.Cfg.Name {
		b.Fatalf("racing best %s (%g) differs from uniform %s (%g): the race changed the winner",
			best.Cfg.Name, best.Obj, want.Cfg.Name, want.Obj)
	}
	if float64(ustats.SAIterations) < 1.5*float64(stats.SAIterations) {
		b.Fatalf("racing saved too little: %d SA iterations vs uniform %d (want >= 1.5x fewer)",
			stats.SAIterations, ustats.SAIterations)
	}
	b.ReportMetric(float64(stats.SAIterations), "sa_iterations")
	b.ReportMetric(float64(ustats.SAIterations), "uniform_sa_iterations")
}

// cutBoundBench returns the cut-bound pruning workload: two healthy
// candidates plus four whose D2D links starve the chiplet bisection (the
// aggregate link sum stays huge, so the compulsory bound cannot see the
// choke point), under a single dominant-FC-weight model whose one explicit
// weight flow must cross the bisection. Weak candidates come FIRST in grid
// order; the bound dispatch order and pruning are on.
func cutBoundBench(b *testing.B) ([]arch.Config, []*dnn.Graph, dse.Options) {
	var cands []arch.Config
	for _, bw := range []float64{1, 1.5, 2, 2.5} {
		w := arch.GArch72()
		w.D2DBW = bw
		w.Name = w.String()
		cands = append(cands, w)
	}
	strong := arch.GArch72()
	glb := arch.GArch72()
	glb.GLBPerCore *= 2
	glb.Name = glb.String()
	cands = append(cands, strong, glb)

	bld := dnn.NewBuilder("bigfc")
	in := bld.Input(1, 1, 8192)
	bld.FC("fc", in, 8192)
	g, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	opt := dse.DefaultOptions()
	opt.Batch = 8
	opt.SAIterations = 150
	opt.Restarts = 2
	opt.Workers = 4
	opt.Prune = true
	opt.Order = dse.OrderBound
	return cands, []*dnn.Graph{g}, opt
}

// benchCutBoundLevel runs the cut-bound workload at one bound level.
func benchCutBoundLevel(b *testing.B, level dse.BoundLevel) (*dse.CandidateResult, dse.SweepStats) {
	cands, models, opt := cutBoundBench(b)
	opt.Bound = level
	var best *dse.CandidateResult
	var stats dse.SweepStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ses := dse.NewSession()
		best = dse.Best(ses.Run(cands, models, opt))
		if best == nil {
			b.Fatal("no feasible candidate")
		}
		stats = ses.LastSweepStats()
	}
	b.StopTimer()
	return best, stats
}

// BenchmarkDSESweepCutBound runs the D2D-starved sweep under the per-cut
// bisection bound and asserts the tentpole claim in-bench: the cut bound
// prunes strictly more multi-chiplet candidates than BoundCompulsory on the
// identical sweep, and both find the bit-identical best. Both pruned counts
// are reported; the bench-compare -cutbound-factor gate holds the gap.
func BenchmarkDSESweepCutBound(b *testing.B) {
	best, stats := benchCutBoundLevel(b, dse.BoundCut)
	cands, models, opt := cutBoundBench(b)
	opt.Bound = dse.BoundCompulsory
	ses := dse.NewSession()
	want := dse.Best(ses.Run(cands, models, opt))
	cstats := ses.LastSweepStats()
	if want == nil || best.Obj != want.Obj || best.Cfg.Name != want.Cfg.Name {
		b.Fatalf("cut-bound sweep best %s (%g) differs from compulsory %s (%g): the cut bound is unsound",
			best.Cfg.Name, best.Obj, want.Cfg.Name, want.Obj)
	}
	if stats.PrunedCandidates <= cstats.PrunedCandidates {
		b.Fatalf("cut bound pruned %d candidates, compulsory pruned %d: the bisection floor bought nothing",
			stats.PrunedCandidates, cstats.PrunedCandidates)
	}
	b.ReportMetric(float64(stats.PrunedCandidates), "pruned_candidates")
	b.ReportMetric(float64(cstats.PrunedCandidates), "compulsory_pruned_candidates")
}

// --- Distributed fleet benchmarks (BENCH_10): shard the grid, broadcast
// the incumbent, merge checkpoints. ---

// fleetBenchSpec is the fleet benchmark workload: four full-speed GArch72
// variants (NoC 32-96 GB/s) plus four DRAM-starved twins whose
// compulsory-traffic lower bound exceeds any full-speed candidate's
// achieved objective. The full-speed half leads the grid in enumeration
// order, so the modulo-sharded fleet leases real work first and the
// incumbent it broadcasts prunes the starved half pre-cell — exactly the
// work an operator saves by pointing idle machines at one coordinator
// instead of splitting the grid into independent sweeps.
func fleetBenchSpec(b *testing.B) (dse.Spec, []arch.Config) {
	b.Helper()
	raw := `{
		"id": "bench-fleet",
		"space": {"tops": 72, "cuts": [1], "dram_per_tops": [2, 0.007],
		          "noc_gbps": [32, 48, 64, 96], "d2d_ratios": [0.5],
		          "glb_kb": [1024], "macs": [1024]},
		"models": ["tinycnn"],
		"sa_iterations": 300,
		"prune": true
	}`
	var spec dse.Spec
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		b.Fatalf("fleet bench spec: %v", err)
	}
	if err := spec.Validate(); err != nil {
		b.Fatalf("fleet bench spec: %v", err)
	}
	cands, err := spec.Candidates()
	if err != nil {
		b.Fatalf("fleet bench candidates: %v", err)
	}
	// The prune story depends on grid order: the full-speed half must
	// enumerate first so shard 0 is real work, not a starved candidate.
	for i, c := range cands {
		if strong := c.DRAMBW > 100; strong != (i < len(cands)/2) {
			b.Fatalf("candidate %d (%s, DRAM %.1f GB/s) breaks the strong-first grid order", i, c.Name, c.DRAMBW)
		}
	}
	return spec, cands
}

// runFleetBench drains one fleet sweep of the benchmark grid — coordinator
// plus `workers` loopback worker loops, one shard per candidate, each
// worker pinned to one in-shard slot — and returns the drain wall time and
// the coordinator's final status. share=false runs the no-incumbent-sharing
// twin: the same shards as N independent single-candidate sweeps.
func runFleetBench(b *testing.B, spec dse.Spec, shards, workers int, share bool) (time.Duration, fleet.SweepStatus) {
	b.Helper()
	coord := fleet.NewCoordinator(fleet.CoordinatorConfig{LeaseTTL: time.Minute})
	srv := httptest.NewServer(coord)
	defer srv.Close()

	body, err := json.Marshal(fleet.SubmitRequest{Spec: spec, Shards: shards})
	if err != nil {
		b.Fatalf("marshal submit: %v", err)
	}
	resp, err := http.Post(srv.URL+"/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatalf("submit: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b.Fatalf("submit answered %d", resp.StatusCode)
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fleet.RunWorker(context.Background(), fleet.WorkerConfig{
				Coordinator:    srv.URL,
				Name:           fmt.Sprintf("bench-w%d", i),
				Workers:        1,
				DisableSharing: !share,
				ExitWhenIdle:   true,
			})
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			b.Fatalf("fleet worker: %v", err)
		}
	}
	st, ok := coord.Status(spec.ID)
	if !ok || st.State != "done" {
		b.Fatalf("fleet sweep did not drain: %+v", st)
	}
	if !st.Incumbent.Found {
		b.Fatalf("fleet sweep found no feasible best")
	}
	return wall, st
}

// BenchmarkFleetSweep is the distributed-fleet twin run. Per iteration it
// drains the identical 8-shard grid twice: once as N independent shards
// (one worker, incumbent sharing off — what splitting the grid across
// machines without a coordinator buys) and once as the 2-worker fleet with
// the incumbent broadcast on. The fleet prunes the starved half of the
// grid pre-cell off the broadcast incumbent, so it wins on one core by
// skipped work alone and adds near-linear scaling on top when the workers
// have real cores to spread over. Soundness is asserted in-bench: all runs
// end at the bit-identical best, and the fleet's total SA iteration count
// is strictly below the independent twin's. The bench-compare -fleet-factor
// gate holds the wall-clock ratio and the strict iteration inequality.
func BenchmarkFleetSweep(b *testing.B) {
	spec, cands := fleetBenchSpec(b)
	shards := len(cands)
	var indepNs, fleetNs time.Duration
	var stIndep, stFleet fleet.SweepStatus
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d1, s1 := runFleetBench(b, spec, shards, 1, false)
		d2, s2 := runFleetBench(b, spec, shards, 2, true)
		indepNs += d1
		fleetNs += d2
		stIndep, stFleet = s1, s2
		if stFleet.Incumbent != stIndep.Incumbent {
			b.Fatalf("fleet best %+v differs from independent-shards best %+v: incumbent sharing is unsound",
				stFleet.Incumbent, stIndep.Incumbent)
		}
	}
	b.StopTimer()

	// The deterministic iteration twin: one sequential sharing worker, so
	// each lease already carries every earlier shard's fold and the pruned
	// set does not depend on scheduling.
	_, stSeq := runFleetBench(b, spec, shards, 1, true)
	if stSeq.Incumbent != stIndep.Incumbent {
		b.Fatalf("sequential fleet best %+v differs from independent-shards best %+v",
			stSeq.Incumbent, stIndep.Incumbent)
	}
	if stSeq.Stats.PrunedCandidates == 0 {
		b.Fatalf("broadcast incumbent pruned nothing: %+v", stSeq.Stats)
	}
	if stSeq.Stats.SAIterations >= stIndep.Stats.SAIterations {
		b.Fatalf("fleet spent %d SA iterations, independent shards %d: want strictly fewer",
			stSeq.Stats.SAIterations, stIndep.Stats.SAIterations)
	}
	if stFleet.Stats.SAIterations >= stIndep.Stats.SAIterations {
		b.Fatalf("racing fleet spent %d SA iterations, independent shards %d: want strictly fewer",
			stFleet.Stats.SAIterations, stIndep.Stats.SAIterations)
	}

	b.ReportMetric(float64(indepNs.Nanoseconds())/float64(b.N), "one_worker_ns")
	b.ReportMetric(float64(fleetNs.Nanoseconds())/float64(b.N), "two_worker_ns")
	b.ReportMetric(float64(stSeq.Stats.SAIterations), "sa_iterations")
	b.ReportMetric(float64(stIndep.Stats.SAIterations), "solo_sa_iterations")
}
